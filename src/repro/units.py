"""Unit-domain and array-contract vocabulary for the phase signal chain.

ViHOT's entire pipeline is phase arithmetic, and the most dangerous bug
class in the repo is a value silently crossing unit domains: a wrapped
phase consumed by code that assumes a continuous track, degrees fed
where radians are expected, a plain frequency [Hz] mixed with an angular
rate [rad/s].  This module gives those domains names so they can be

* **declared** in signatures — ``Annotated[float, Domain("wrapped_rad")]``
  (or in a docstring, ``:domain phase: wrapped_rad`` /
  ``:domain return: unwrapped_rad`` when ``Annotated`` would be noisy), and
* **checked** statically — the ``vihot lint --dataflow`` analyzer
  (:mod:`repro.analysis.dataflow`) propagates these domains through
  assignments, arithmetic and call boundaries and flags cross-domain
  flows (rules VH301-VH304).

The same pattern covers the *array* contracts the fleet-batched path
lives on: :class:`Shape` declares symbolic axes
(``Annotated[np.ndarray, Shape("S", "m")]`` — ``S`` sessions stacked
over ``m`` query samples) and :class:`DType` pins the numeric width.
``vihot lint --shapes`` (:mod:`repro.analysis.shapes`) checks those
statically (rules VH501-VH504) and
:mod:`repro.analysis.runtime_contracts` cross-checks the observed
shapes/dtypes against the declarations while the test suite runs.

The markers are deliberately runtime-inert: each carries its payload
and nothing else, so annotating a hot-path signature costs nothing.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = [
    "AXIS_SYMBOLS",
    "DEG",
    "DOMAIN_NAMES",
    "DTYPE_NAMES",
    "DType",
    "Domain",
    "HZ",
    "RAD",
    "RAD_PER_S",
    "Shape",
    "UNWRAPPED_RAD",
    "WRAPPED_RAD",
]

#: Phase wrapped to ``(-pi, pi]`` — what ``wrap_phase`` / ``np.angle``
#: produce.  Plain subtraction and arithmetic means are wrong near the
#: seam; use ``phase_difference`` / ``circular_mean``.
WRAPPED_RAD = "wrapped_rad"

#: Continuous (unwrapped) phase track — what ``np.unwrap`` produces.
#: Safe to difference, interpolate and resample.
UNWRAPPED_RAD = "unwrapped_rad"

#: Radians with unspecified wrapping: plain geometric angles, or places
#: where either wrapped or unwrapped phase is acceptable.
RAD = "rad"

#: Degrees.  Presentation-layer only; everything numeric runs in radians.
DEG = "deg"

#: Ordinary frequency [Hz] (cycles per second).
HZ = "hz"

#: Angular rate [rad/s] — ``2 * pi`` times the Hz value.
RAD_PER_S = "rad_per_s"

#: Every domain the dataflow lint knows how to track.
DOMAIN_NAMES = frozenset(
    {WRAPPED_RAD, UNWRAPPED_RAD, RAD, DEG, HZ, RAD_PER_S}
)


@dataclass(frozen=True)
class Domain:
    """``Annotated`` metadata declaring the unit domain of a value.

    Usage::

        def wrap_phase(phase: Annotated[float, Domain("rad")]
                       ) -> Annotated[float, Domain("wrapped_rad")]: ...

    The dataflow analyzer reads these markers syntactically (it never
    imports the annotated module), but constructing one at runtime still
    validates the name so a typo'd domain cannot silently disable
    checking.
    """

    name: str

    def __post_init__(self) -> None:
        if self.name not in DOMAIN_NAMES:
            raise ValueError(
                f"unknown unit domain {self.name!r}; known: {sorted(DOMAIN_NAMES)}"
            )

    def __str__(self) -> str:
        return self.name


#: The canonical axis vocabulary of the batched estimation path.  Shape
#: declarations may use any identifier, but these are the symbols the
#: codebase shares — a declaration spelled with one of them means *the*
#: fleet axis of that name, and the VH5xx rules treat two different
#: symbols as two different axes:
#:
#: ``S``  stacked serving sessions        ``B``     candidate-bank entries
#: ``m``  query (window) samples          ``L``     candidate length
#: ``T``  capture packets (time)          ``F``     OFDM subcarriers
#: ``W``  sliding-window count            ``n_rx``  RX antennas
#: ``K``  spectrum bins                   ``n_sub`` subcarrier subset
#: ``win``  resampled window samples
AXIS_SYMBOLS = frozenset(
    {"S", "B", "m", "L", "T", "F", "W", "K", "n_rx", "n_sub", "win"}
)

#: Numeric dtypes the contract lattice tracks (numpy canonical names).
DTYPE_NAMES = frozenset(
    {
        "float16",
        "float32",
        "float64",
        "complex64",
        "complex128",
        "int32",
        "int64",
        "bool",
    }
)


@dataclass(frozen=True)
class Shape:
    """``Annotated`` metadata declaring an array's symbolic shape.

    Usage::

        def stacked_dtw_distance(
            queries: Annotated[np.ndarray, Shape("S", "m")],
            candidates: Annotated[np.ndarray, Shape("B", "L")],
        ) -> Annotated[np.ndarray, Shape("S", "B")]: ...

    Axes are axis *symbols* (strings — see :data:`AXIS_SYMBOLS` for the
    shared vocabulary; the same symbol must bind to the same size
    everywhere it appears in one signature) or literal ints for fixed
    extents.  For ``ArrayLike`` parameters or parameters accepting
    several ranks, the docstring form supports alternatives::

        :shape candidates: (B, L) | (S, B, L)

    Like :class:`Domain`, the marker is runtime-inert; the static pass
    (:mod:`repro.analysis.shapes`) reads it syntactically and the
    runtime cross-check (:mod:`repro.analysis.runtime_contracts`) reads
    it off the live function object.
    """

    axes: tuple[str | int, ...]

    def __init__(self, *axes: str | int) -> None:
        for axis in axes:
            if isinstance(axis, int):
                if axis < 0:
                    raise ValueError(f"axis extents must be >= 0, got {axis}")
            elif not (isinstance(axis, str) and axis.isidentifier()):
                raise ValueError(
                    f"axis symbols must be identifiers or ints, got {axis!r}"
                )
        object.__setattr__(self, "axes", tuple(axes))

    def __str__(self) -> str:
        return "(" + ", ".join(str(a) for a in self.axes) + ")"


@dataclass(frozen=True)
class DType:
    """``Annotated`` metadata pinning an array's numeric dtype.

    Usage::

        def sanitize(csi: Annotated[np.ndarray, DType("complex128")]
                     ) -> Annotated[np.ndarray, DType("float64")]: ...

    The docstring form is ``:dtype csi: complex128``.  The static pass
    flags silent downcasts (VH503: complex -> real, float64 -> float32)
    and the runtime cross-check requires the observed dtype to equal the
    declared one exactly.
    """

    name: str

    def __post_init__(self) -> None:
        if self.name not in DTYPE_NAMES:
            raise ValueError(
                f"unknown dtype {self.name!r}; known: {sorted(DTYPE_NAMES)}"
            )

    def __str__(self) -> str:
        return self.name
