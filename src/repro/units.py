"""Unit-domain vocabulary for the phase signal chain.

ViHOT's entire pipeline is phase arithmetic, and the most dangerous bug
class in the repo is a value silently crossing unit domains: a wrapped
phase consumed by code that assumes a continuous track, degrees fed
where radians are expected, a plain frequency [Hz] mixed with an angular
rate [rad/s].  This module gives those domains names so they can be

* **declared** in signatures — ``Annotated[float, Domain("wrapped_rad")]``
  (or in a docstring, ``:domain phase: wrapped_rad`` /
  ``:domain return: unwrapped_rad`` when ``Annotated`` would be noisy), and
* **checked** statically — the ``vihot lint --dataflow`` analyzer
  (:mod:`repro.analysis.dataflow`) propagates these domains through
  assignments, arithmetic and call boundaries and flags cross-domain
  flows (rules VH301-VH304).

The markers are deliberately runtime-inert: ``Domain`` carries a name
and nothing else, so annotating a hot-path signature costs nothing.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = [
    "DEG",
    "DOMAIN_NAMES",
    "Domain",
    "HZ",
    "RAD",
    "RAD_PER_S",
    "UNWRAPPED_RAD",
    "WRAPPED_RAD",
]

#: Phase wrapped to ``(-pi, pi]`` — what ``wrap_phase`` / ``np.angle``
#: produce.  Plain subtraction and arithmetic means are wrong near the
#: seam; use ``phase_difference`` / ``circular_mean``.
WRAPPED_RAD = "wrapped_rad"

#: Continuous (unwrapped) phase track — what ``np.unwrap`` produces.
#: Safe to difference, interpolate and resample.
UNWRAPPED_RAD = "unwrapped_rad"

#: Radians with unspecified wrapping: plain geometric angles, or places
#: where either wrapped or unwrapped phase is acceptable.
RAD = "rad"

#: Degrees.  Presentation-layer only; everything numeric runs in radians.
DEG = "deg"

#: Ordinary frequency [Hz] (cycles per second).
HZ = "hz"

#: Angular rate [rad/s] — ``2 * pi`` times the Hz value.
RAD_PER_S = "rad_per_s"

#: Every domain the dataflow lint knows how to track.
DOMAIN_NAMES = frozenset(
    {WRAPPED_RAD, UNWRAPPED_RAD, RAD, DEG, HZ, RAD_PER_S}
)


@dataclass(frozen=True)
class Domain:
    """``Annotated`` metadata declaring the unit domain of a value.

    Usage::

        def wrap_phase(phase: Annotated[float, Domain("rad")]
                       ) -> Annotated[float, Domain("wrapped_rad")]: ...

    The dataflow analyzer reads these markers syntactically (it never
    imports the annotated module), but constructing one at runtime still
    validates the name so a typo'd domain cannot silently disable
    checking.
    """

    name: str

    def __post_init__(self) -> None:
        if self.name not in DOMAIN_NAMES:
            raise ValueError(
                f"unknown unit domain {self.name!r}; known: {sorted(DOMAIN_NAMES)}"
            )

    def __str__(self) -> str:
        return self.name
