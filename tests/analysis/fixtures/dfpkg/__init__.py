"""Two-module fixture package for the cross-module dataflow tests.

``consumer`` imports ``store_phase`` through this package re-export, so
resolving its call site exercises the full alias chain:
``dfpkg.consumer.store_phase`` -> ``dfpkg.store_phase`` ->
``dfpkg.phasebank.store_phase``.
"""

from dfpkg.phasebank import store_phase

__all__ = ["store_phase"]
