"""Consumer half: leaks a *wrapped* phase across the module boundary.

``store_phase`` is imported through the package re-export, so only the
project-wide alias resolution can see that the wrapped value reaches a
parameter declared ``unwrapped_rad`` in another module (VH304).
"""
import numpy as np

from dfpkg import store_phase


def ingest(csi):
    wrapped = np.angle(csi)
    return store_phase(wrapped)
