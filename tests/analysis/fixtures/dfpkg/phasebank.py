"""Producer half of the cross-module fixture: declares its contract."""
import numpy as np


def store_phase(track):
    """Normalise a continuous phase track for storage.

    :domain track: unwrapped_rad
    :domain return: unwrapped_rad
    """
    return np.asarray(track, dtype=np.float64)
