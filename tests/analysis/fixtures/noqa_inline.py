"""A real VH101 violation suppressed by the inline mechanism."""
import numpy as np

legacy = np.random.normal(0.0, 1.0, 4)  # vihot: noqa[VH101]
