"""Clean twin of vh202: fully annotated public surface."""


def estimate(phase: float, t: float) -> float:
    return phase + t
