"""Triggers VH202: unannotated public function in a typed package."""


def estimate(phase, t):
    return phase + t
