"""Clean twin of vh101: the generator is threaded in explicitly."""
import numpy as np


def jitter(rng: np.random.Generator, n: int) -> np.ndarray:
    return rng.normal(0.0, 1.0, n)
