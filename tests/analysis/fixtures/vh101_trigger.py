"""Triggers VH101: draw from numpy's global RNG state."""
import numpy as np


def jitter(n):
    return np.random.normal(0.0, 1.0, n)
