"""Clean twin of vh102: an explicitly seeded random.Random instance."""
import random


def pick(items, seed: int = 7):
    return random.Random(seed).choice(items)
