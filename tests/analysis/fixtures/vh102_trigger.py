"""Triggers VH102: draw from the stdlib global Mersenne Twister."""
import random


def pick(items):
    return random.choice(items)
