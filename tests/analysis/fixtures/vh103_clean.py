"""Clean twin of vh103: the clock is injectable (referenced, never read)."""
from time import perf_counter


def stamp(clock=perf_counter):
    return clock()
