"""Triggers VH103: clock read inside estimation-path code."""
import time


def stamp():
    return time.time()
