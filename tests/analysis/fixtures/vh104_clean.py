"""Clean twin of vh104: RNG constructed from an explicit seed."""
import numpy as np

rng = np.random.default_rng(1234)
