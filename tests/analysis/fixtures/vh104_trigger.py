"""Triggers VH104: RNG constructed from OS entropy."""
import numpy as np

rng = np.random.default_rng()
