"""Clean twin of vh105: a concrete integer seed default."""


def make_scene(seed: int = 7) -> int:
    return seed
