"""Triggers VH105: public seed parameter defaulting to None."""


def make_scene(seed=None):
    return seed
