"""Clean twin of vh201: None default, constructed inside the call."""


def collect(values=None):
    values = values if values is not None else []
    values.append(1)
    return values
