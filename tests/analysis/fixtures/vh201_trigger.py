"""Triggers VH201: mutable default argument."""


def collect(values=[]):
    values.append(1)
    return values
