"""Clean twin of vh203: the expected exception is named."""


def guarded(fn):
    try:
        return fn()
    except ValueError:
        return None
