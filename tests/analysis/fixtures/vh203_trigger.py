"""Triggers VH203: bare except handler."""


def guarded(fn):
    try:
        return fn()
    except:
        return None
