"""Clean twin of vh204: buffer dtype pinned explicitly."""
import numpy as np

buf = np.empty(16, dtype=np.float64)
