"""Triggers VH204: np.empty buffer with an unpinned dtype."""
import numpy as np

buf = np.empty(16)
