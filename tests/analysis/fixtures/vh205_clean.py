"""VH205 clean twin: a pinned `run_batch` implementation.

`PinnedBatchStage` is named in a test-tree file (this one) alongside a
bit-identity marker: test helpers pin themselves in the file whose test
asserts the batched path is bit-identical to the scalar loop.
"""


def test_pinned_batch_stage_bit_identical() -> None:
    stage = PinnedBatchStage()
    contexts = [1, 2, 3]
    assert stage.run_batch(contexts) == [stage.run(ctx) for ctx in contexts]


class PinnedBatchStage:
    name = "pinned"

    def run(self, ctx: object) -> object:
        return ctx

    def run_batch(self, contexts: list) -> list:
        return [self.run(ctx) for ctx in contexts]
