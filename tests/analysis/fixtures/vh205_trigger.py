"""VH205 trigger: a `run_batch` implementation nothing pins.

No test file names `DriftedBatchStage` next to a bit-identity marker,
so the batched path could silently diverge from the scalar one.
"""


class DriftedBatchStage:
    name = "drifted"

    def run(self, ctx: object) -> object:
        return ctx

    def run_batch(self, contexts: list) -> list:
        return [self.run(ctx) for ctx in reversed(contexts)]
