"""Clean twin of vh301: the heading is converted before the sine."""
import numpy as np


def heading_component(heading_deg):
    """Project a compass heading onto the x axis.

    :domain heading_deg: deg
    """
    return np.sin(np.deg2rad(heading_deg))
