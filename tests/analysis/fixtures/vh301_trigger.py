"""Trigger: a degree-valued heading flows into ``np.sin`` (radians)."""
import numpy as np


def heading_component(heading_deg):
    """Project a compass heading onto the x axis.

    :domain heading_deg: deg
    """
    return np.sin(heading_deg)
