"""Clean twin of vh302: the difference is immediately re-wrapped."""
import numpy as np

from repro.dsp.phase import wrap_phase


def phase_step(csi_a, csi_b):
    a = np.angle(csi_a)
    b = np.angle(csi_b)
    return wrap_phase(a - b)
