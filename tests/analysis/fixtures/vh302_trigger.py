"""Trigger: naive subtraction of two wrapped phases.

The difference jumps by 2*pi whenever either operand crosses the +-pi
seam — the canonical CSI phase bug.
"""
import numpy as np


def phase_step(csi_a, csi_b):
    a = np.angle(csi_a)
    b = np.angle(csi_b)
    return a - b
