"""Clean twin of vh303: the 2*pi conversion is explicit."""
import numpy as np


def doppler_bin(omega):
    """Quantise an angular rate.

    :domain omega: rad_per_s
    """
    return omega


def lookup(freq_hz):
    """Look up the Doppler bin of a tone.

    :domain freq_hz: hz
    """
    return doppler_bin(2.0 * np.pi * freq_hz)
