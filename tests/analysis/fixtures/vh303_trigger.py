"""Trigger: a plain frequency [Hz] passed where rad/s is declared."""


def doppler_bin(omega):
    """Quantise an angular rate.

    :domain omega: rad_per_s
    """
    return omega


def lookup(freq_hz):
    """Look up the Doppler bin of a tone.

    :domain freq_hz: hz
    """
    return doppler_bin(freq_hz)
