"""Clean twin of vh401: copy first, then mutate the owned copy."""
import numpy as np


def normalize(window: np.ndarray) -> np.ndarray:
    window = np.array(window, dtype=np.float64)
    window -= window.mean()
    return window
