"""Trigger: in-place normalisation writes through the caller's array."""
import numpy as np


def normalize(window: np.ndarray) -> np.ndarray:
    window -= window.mean()
    return window
