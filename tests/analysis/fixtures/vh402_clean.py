"""Clean twin of vh402: the function mutates its own copy."""
import numpy as np


def zero_dc(spectrum: np.ndarray) -> np.ndarray:
    out = spectrum.copy()
    out[:4] = 0.0
    return out
