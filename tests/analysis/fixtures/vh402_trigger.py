"""Trigger: writing through a slice view mutates the caller's buffer."""
import numpy as np


def zero_dc(spectrum: np.ndarray) -> np.ndarray:
    low = spectrum[:4]
    low[:] = 0.0
    return spectrum
