"""Clean twin of vh501_trigger: every argument matches its declaration."""


def bank_scores(query, candidates):
    """Score one query against the candidate bank.

    :shape query: (m,)
    :shape candidates: (B, L)
    """
    return float(len(query) + len(candidates))


def run(query, candidates):
    """Call the scorer with the arguments in the right slots.

    :shape query: (m,)
    :shape candidates: (B, L)
    """
    return bank_scores(query, candidates)
