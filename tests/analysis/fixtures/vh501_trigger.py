"""Trigger: a candidate bank flows into a 1-D query slot (VH501)."""


def bank_scores(query, candidates):
    """Score one query against the candidate bank.

    :shape query: (m,)
    :shape candidates: (B, L)
    """
    return float(len(query) + len(candidates))


def run(query, candidates):
    """Call the scorer with the arguments crossed.

    :shape query: (m,)
    :shape candidates: (B, L)
    """
    return bank_scores(candidates, candidates)
