"""Clean twin of vh502_trigger: the query block keeps its axis order."""


def stacked_scores(queries, candidates):
    """Score a stack of queries against per-session banks.

    :shape queries: (S, m)
    :shape candidates: (S, B, L)
    """
    return float(len(queries) + len(candidates))


def run(queries, candidates):
    """Feed the kernel the session-major block it declares.

    :shape queries: (S, m)
    :shape candidates: (S, B, L)
    """
    return stacked_scores(queries, candidates)
