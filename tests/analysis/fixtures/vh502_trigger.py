"""Trigger: a transposed query block reaches a stacked kernel (VH502)."""


def stacked_scores(queries, candidates):
    """Score a stack of queries against per-session banks.

    :shape queries: (S, m)
    :shape candidates: (S, B, L)
    """
    return float(len(queries) + len(candidates))


def run(queries, candidates):
    """Feed the kernel a batch-major block that was transposed.

    :shape queries: (S, m)
    :shape candidates: (S, B, L)
    """
    return stacked_scores(queries.T, candidates)
