"""Clean twin of vh503_trigger: the complex tap is explicitly reduced."""

import numpy as np


def smooth(phases):
    """Smooth a real phase track.

    :shape phases: (T,)
    :dtype phases: float64
    """
    return phases


def run(csi):
    """Take the angle first — an explicit complex -> float64 reduction.

    :shape csi: (T,)
    :dtype csi: complex128
    """
    return smooth(np.angle(csi))
