"""Trigger: complex CSI flows into a float64 slot uncast (VH503)."""


def smooth(phases):
    """Smooth a real phase track.

    :shape phases: (T,)
    :dtype phases: float64
    """
    return phases


def run(csi):
    """Pass the raw complex tap where real phases are declared.

    :shape csi: (T,)
    :dtype csi: complex128
    """
    return smooth(csi)
