"""Clean twin of vh504_trigger: both operands share every declared axis."""


def run(queries, others):
    """Combine two session-major blocks of the same shape.

    :shape queries: (S, m)
    :shape others: (S, m)
    """
    return queries + others
