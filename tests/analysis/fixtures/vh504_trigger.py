"""Trigger: arithmetic broadcasts the session axis against the bank axis
(VH504)."""


def run(queries, candidates):
    """Combine two blocks whose leading axes are different fleet axes.

    :shape queries: (S, m)
    :shape candidates: (B, m)
    """
    return queries + candidates
