"""Clean twin of vh601_trigger: the worker re-initialises the state post-fork."""

from multiprocessing import get_context

_CACHE = {}


def _worker_main(conn):
    global _CACHE
    _CACHE = {}
    _CACHE["hits"] = _CACHE.get("hits", 0) + 1
    conn.send(_CACHE["hits"])


def launch():
    ctx = get_context("fork")
    parent, child = ctx.Pipe()
    proc = ctx.Process(target=_worker_main, args=(child,), daemon=True)
    proc.start()
    return parent, proc
