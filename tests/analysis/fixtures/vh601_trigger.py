"""Trigger: worker-reachable code mutates fork-inherited module state (VH601)."""

from multiprocessing import get_context

_CACHE = {}


def _worker_main(conn):
    _CACHE["hits"] = _CACHE.get("hits", 0) + 1
    conn.send(_CACHE["hits"])


def launch():
    ctx = get_context("fork")
    parent, child = ctx.Pipe()
    proc = ctx.Process(target=_worker_main, args=(child,), daemon=True)
    proc.start()
    return parent, proc
