"""Clean twin of vh602_trigger: the handle is closed and unlinked on exit."""

from multiprocessing import shared_memory


def acquire_segment(size):
    shm = shared_memory.SharedMemory(create=True, size=size)
    try:
        return bytes(shm.buf[:4])
    finally:
        shm.close()
        shm.unlink()
