"""Trigger: a shared-memory segment is acquired and never released (VH602)."""

from multiprocessing import shared_memory


def acquire_segment(size):
    shm = shared_memory.SharedMemory(create=True, size=size)
    return shm.name
