"""Clean twin of vh603_trigger: plain data crosses; the far side rebuilds."""

from multiprocessing.connection import Connection

import numpy as np


def publish(conn: Connection, seed):
    rng = np.random.default_rng(seed)
    conn.send((int(seed), float(rng.standard_normal())))
