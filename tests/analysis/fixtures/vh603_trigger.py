"""Trigger: an RNG generator is shipped across a pickle boundary (VH603)."""

from multiprocessing.connection import Connection

import numpy as np


def publish(conn: Connection, seed):
    rng = np.random.default_rng(seed)
    conn.send(rng)
