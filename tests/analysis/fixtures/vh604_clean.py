"""Clean twin of vh604_trigger: each worker derives its own stream post-fork."""

from multiprocessing import get_context

import numpy as np

_BASE_SEED = 1234


def _worker_main(conn, worker_index):
    rng = np.random.default_rng(_BASE_SEED + worker_index)
    conn.send(float(rng.standard_normal()))


def launch(n):
    ctx = get_context("fork")
    procs = []
    for index in range(n):
        parent, child = ctx.Pipe()
        procs.append(
            ctx.Process(target=_worker_main, args=(child, index), daemon=True)
        )
    return procs
