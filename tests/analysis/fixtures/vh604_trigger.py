"""Trigger: a pre-fork module-level generator feeds every worker (VH604)."""

from multiprocessing import get_context

import numpy as np

_RNG = np.random.default_rng(1234)


def _worker_main(conn):
    conn.send(float(_RNG.standard_normal()))


def launch(n):
    ctx = get_context("fork")
    procs = []
    for _ in range(n):
        parent, child = ctx.Pipe()
        procs.append(ctx.Process(target=_worker_main, args=(child,), daemon=True))
    return procs
