"""Clean twin of vh605_trigger: pinned context, module-level target, daemon upfront."""

from multiprocessing import get_context


def _worker_main(conn):
    conn.close()


def serve_forever():
    ctx = get_context("fork")
    lock = ctx.Lock()
    parent, child = ctx.Pipe()
    proc = ctx.Process(target=_worker_main, args=(child,), daemon=True)
    proc.start()
    return parent, lock, proc
