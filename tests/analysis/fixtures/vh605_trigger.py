"""Trigger: fork-only multiprocessing API use that breaks under spawn (VH605)."""

import multiprocessing


def serve_forever(handler):
    lock = multiprocessing.Lock()
    proc = multiprocessing.Process(target=lambda: handler(lock))
    proc.start()
    proc.daemon = True
    return proc
