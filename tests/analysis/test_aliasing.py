"""Behaviour tests for the VH4xx numpy aliasing rules."""

from repro.analysis import Analyzer, dataflow_rules


def analyze(src):
    return Analyzer(dataflow_rules()).check_source(src)


def test_out_keyword_on_parameter_flags():
    src = """\
import numpy as np


def accumulate(total: np.ndarray, delta: np.ndarray) -> np.ndarray:
    np.add(total, delta, out=total)
    return total
"""
    findings = analyze(src)
    assert [f.rule for f in findings] == ["VH401"]
    assert "out=" in findings[0].message


def test_subscript_store_on_parameter_flags_even_untyped():
    src = """\
def clamp_first(values):
    values[0] = 0.0
    return values
"""
    assert [f.rule for f in analyze(src)] == ["VH401"]


def test_mutating_method_on_parameter_flags():
    src = """\
import numpy as np


def order(values: np.ndarray) -> np.ndarray:
    values.sort()
    return values
"""
    assert [f.rule for f in analyze(src)] == ["VH401"]


def test_scalar_augassign_does_not_flag():
    src = """\
def count_evens(limit: int) -> int:
    count = 0
    for i in range(limit):
        if i % 2 == 0:
            count += 1
    return count


def scale(factor: float) -> float:
    factor *= 2.0
    return factor
"""
    assert analyze(src) == []


def test_view_chain_through_reshape_flags_vh402():
    src = """\
import numpy as np


def flatten_and_zero(grid: np.ndarray) -> np.ndarray:
    flat = grid.reshape(-1)
    flat[0] = 0.0
    return grid
"""
    findings = analyze(src)
    assert [f.rule for f in findings] == ["VH402"]
    assert any("grid" in step for step in findings[0].trace)


def test_copy_breaks_the_alias_chain():
    src = """\
import numpy as np


def flatten_and_zero(grid: np.ndarray) -> np.ndarray:
    flat = grid.reshape(-1).copy()
    flat[0] = 0.0
    return flat
"""
    assert analyze(src) == []


def test_astype_copy_false_is_still_a_view():
    src = """\
import numpy as np


def cast(values: np.ndarray) -> np.ndarray:
    alias = values.astype(np.float64, copy=False)
    alias[0] = 0.0
    return alias
"""
    assert [f.rule for f in analyze(src)] == ["VH402"]


def test_astype_default_copies():
    src = """\
import numpy as np


def cast(values: np.ndarray) -> np.ndarray:
    owned = values.astype(np.float64)
    owned[0] = 0.0
    return owned
"""
    assert analyze(src) == []


def test_rebinding_to_owned_expression_clears_borrow():
    src = """\
import numpy as np


def shift(values: np.ndarray) -> np.ndarray:
    values = values + 1.0
    values[0] = 0.0
    return values
"""
    assert analyze(src) == []


def test_inline_noqa_suppresses_aliasing_finding():
    src = """\
import numpy as np


def normalize(window: np.ndarray) -> np.ndarray:
    window -= window.mean()  # vihot: noqa[VH401]
    return window
"""
    assert analyze(src) == []
