"""Tests for the project-wide call-graph / import-resolution layer."""

from pathlib import Path

from repro.analysis.callgraph import ProjectContext, build_project

FIXTURES = Path(__file__).parent / "fixtures"


def build_dfpkg(cache_dir=None):
    return build_project([FIXTURES / "dfpkg"], cache_dir=cache_dir)


def test_module_qualnames_follow_packages():
    project = build_dfpkg()
    assert set(project.modules) == {"dfpkg", "dfpkg.phasebank", "dfpkg.consumer"}


def test_reexport_resolves_through_package_init():
    project = build_dfpkg()
    # consumer spells the call `store_phase`, imported from the package
    # __init__, which re-exports it from phasebank.
    assert (
        project.canonicalize("dfpkg.consumer.store_phase")
        == "dfpkg.phasebank.store_phase"
    )
    info = project.resolve_function("store_phase", module="dfpkg.consumer")
    assert info is not None
    assert info.qualname == "dfpkg.phasebank.store_phase"


def test_call_graph_records_cross_module_edge():
    project = build_dfpkg()
    assert "dfpkg.phasebank.store_phase" in project.callees_of("dfpkg.consumer.ingest")
    assert "dfpkg.consumer.ingest" in project.callers_of("dfpkg.phasebank.store_phase")


def test_declared_domains_are_indexed():
    project = build_dfpkg()
    info = project.functions["dfpkg.phasebank.store_phase"]
    assert info.declared_params == {"track": "unwrapped_rad"}
    assert info.return_domain == "unwrapped_rad"


def test_return_domain_inference_reaches_fixpoint(tmp_path):
    pkg = tmp_path / "chainpkg"
    pkg.mkdir()
    (pkg / "__init__.py").write_text("", encoding="utf-8")
    (pkg / "a.py").write_text(
        "import numpy as np\n\n\ndef source(csi):\n    return np.angle(csi)\n",
        encoding="utf-8",
    )
    (pkg / "b.py").write_text(
        "from chainpkg.a import source\n\n\ndef relay(csi):\n    return source(csi)\n",
        encoding="utf-8",
    )
    project = build_project([pkg])
    # Neither function declares a domain: source is inferred from
    # np.angle, relay transitively through the fixed-point iteration.
    assert project.functions["chainpkg.a.source"].return_domain == "wrapped_rad"
    assert project.functions["chainpkg.b.relay"].return_domain == "wrapped_rad"


def test_summary_cache_round_trip(tmp_path):
    cache = tmp_path / "vihot-cache"
    first = build_dfpkg(cache_dir=cache)
    assert first.cache_hit is False
    assert list(cache.glob("summaries-v*.json")), "cache file should be written"

    second = build_dfpkg(cache_dir=cache)
    assert second.cache_hit is True
    for qualname, info in first.functions.items():
        assert second.functions[qualname].return_domain == info.return_domain


def test_cache_invalidates_on_source_change(tmp_path):
    pkg = tmp_path / "mutpkg"
    pkg.mkdir()
    (pkg / "__init__.py").write_text("", encoding="utf-8")
    mod = pkg / "m.py"
    mod.write_text(
        "import numpy as np\n\n\ndef f(csi):\n    return np.angle(csi)\n",
        encoding="utf-8",
    )
    cache = tmp_path / "cache"
    first = build_project([pkg], cache_dir=cache)
    assert first.functions["mutpkg.m.f"].return_domain == "wrapped_rad"

    mod.write_text(
        "import numpy as np\n\n\ndef f(csi):\n    return np.unwrap(np.angle(csi))\n",
        encoding="utf-8",
    )
    second = build_project([pkg], cache_dir=cache)
    assert second.cache_hit is False
    assert second.functions["mutpkg.m.f"].return_domain == "unwrapped_rad"


def test_project_context_build_is_reusable_scratch():
    project = build_dfpkg()
    assert isinstance(project, ProjectContext)
    project.memo["k"] = 1
    assert project.memo["k"] == 1


def test_cache_invalidates_on_ruleset_epoch_bump(tmp_path, monkeypatch):
    """A RULESET_EPOCH bump must orphan every cached summary file: new
    inference rules (the VH5xx era) change what a summary contains, so a
    stale-epoch payload silently reused would lint with old semantics."""
    from repro.analysis import callgraph

    cache = tmp_path / "cache"
    first = build_dfpkg(cache_dir=cache)
    assert first.cache_hit is False
    second = build_dfpkg(cache_dir=cache)
    assert second.cache_hit is True

    monkeypatch.setattr(callgraph, "RULESET_EPOCH", callgraph.RULESET_EPOCH + 1)
    bumped = build_dfpkg(cache_dir=cache)
    assert bumped.cache_hit is False
    # The bumped build re-caches under the new epoch and hits next time.
    again = build_dfpkg(cache_dir=cache)
    assert again.cache_hit is True
    names = [p.name for p in cache.glob("summaries-*.json")]
    assert any(f"-e{callgraph.RULESET_EPOCH}-" in n for n in names)


def test_epoch_two_summaries_carry_shape_declarations(tmp_path):
    pkg = tmp_path / "shpkg"
    pkg.mkdir()
    (pkg / "__init__.py").write_text("", encoding="utf-8")
    (pkg / "k.py").write_text(
        'def f(queries):\n'
        '    """\n'
        '    :shape queries: (S, m)\n'
        '    :dtype queries: float64\n'
        '    """\n'
        '    return queries\n',
        encoding="utf-8",
    )
    cache = tmp_path / "cache"
    build_project([pkg], cache_dir=cache)
    cached = build_project([pkg], cache_dir=cache)
    assert cached.cache_hit is True
    info = cached.functions["shpkg.k.f"]
    assert info.declared_shapes == {"queries": (("S", "m"),)}
    assert info.declared_dtypes == {"queries": "float64"}
