"""Golden-fixture and behaviour tests for the VH6xx process-safety rules."""

from pathlib import Path

import pytest

from repro.analysis import Analyzer, concurrency_rules

FIXTURES = Path(__file__).parent / "fixtures"

CONCURRENCY_FIXTURES = {
    "VH601": FIXTURES / "vh601",
    "VH602": FIXTURES / "vh602",
    "VH603": FIXTURES / "vh603",
    "VH604": FIXTURES / "vh604",
    "VH605": FIXTURES / "vh605",
}


def analyze_file(path):
    return Analyzer(concurrency_rules()).check_file(path)


def analyze_source(src):
    return Analyzer(concurrency_rules()).check_source(src)


def test_every_concurrency_rule_has_a_fixture():
    assert {r.id for r in concurrency_rules()} == set(CONCURRENCY_FIXTURES)
    for stem in CONCURRENCY_FIXTURES.values():
        assert stem.with_name(stem.name + "_trigger.py").exists()
        assert stem.with_name(stem.name + "_clean.py").exists()


@pytest.mark.parametrize("rule_id", sorted(CONCURRENCY_FIXTURES))
def test_trigger_fixture_fires_exactly_its_rule(rule_id):
    stem = CONCURRENCY_FIXTURES[rule_id]
    findings = analyze_file(stem.with_name(stem.name + "_trigger.py"))
    assert findings, f"{rule_id} trigger fixture produced no findings"
    assert {f.rule for f in findings} == {rule_id}


@pytest.mark.parametrize("rule_id", sorted(CONCURRENCY_FIXTURES))
def test_clean_fixture_is_silent(rule_id):
    stem = CONCURRENCY_FIXTURES[rule_id]
    findings = analyze_file(stem.with_name(stem.name + "_clean.py"))
    assert findings == []


def test_vh601_trace_names_the_entrypoint_and_the_state():
    stem = CONCURRENCY_FIXTURES["VH601"]
    (finding,) = analyze_file(stem.with_name(stem.name + "_trigger.py"))
    assert "_worker_main" in finding.message
    assert "_CACHE" in finding.message
    assert finding.trace, "VH601 findings must carry a reachability trace"
    assert any("module scope" in step for step in finding.trace)


def test_vh601_reaches_through_the_call_graph():
    """The mutation need not sit in the entrypoint itself: a helper two
    calls deep is still worker-reachable."""
    findings = analyze_source(
        "_SEEN = {}\n"
        "\n"
        "def _bump(key):\n"
        "    _SEEN[key] = _SEEN.get(key, 0) + 1\n"
        "\n"
        "def _handle(cmd):\n"
        "    _bump(cmd[0])\n"
        "\n"
        "def _worker_main(conn):\n"
        "    _handle(conn.recv())\n"
    )
    assert [f.rule for f in findings] == ["VH601"]
    assert "_bump" in findings[0].message


def test_vh602_release_through_constructor_ownership_is_clean():
    """The fabric pattern: the acquiring function hands the ring to a
    shard object, and shutdown code releases `shard.ring` — the escape
    analysis must follow the handle through the constructor."""
    findings = analyze_source(
        "from multiprocessing import shared_memory\n"
        "\n"
        "class Shard:\n"
        "    def __init__(self, ring):\n"
        "        self.ring = ring\n"
        "\n"
        "class Fabric:\n"
        "    def __init__(self, n):\n"
        "        self.shards = []\n"
        "        for _ in range(n):\n"
        "            ring = shared_memory.SharedMemory(create=True, size=64)\n"
        "            self.shards.append(Shard(ring))\n"
        "\n"
        "    def close(self):\n"
        "        for shard in self.shards:\n"
        "            shard.ring.close()\n"
        "            shard.ring.unlink()\n"
    )
    assert findings == []


def test_vh602_attr_acquisition_without_release_fires():
    findings = analyze_source(
        "from multiprocessing import shared_memory\n"
        "\n"
        "class Holder:\n"
        "    def __init__(self, size):\n"
        "        self._seg = shared_memory.SharedMemory(create=True, size=size)\n"
    )
    assert [f.rule for f in findings] == ["VH602"]
    assert "_seg" in findings[0].message


def test_vh603_fork_context_process_args_are_not_flagged():
    """The fabric deliberately inherits rings/locks by fork: args of a
    pinned-fork Process never pickle, so nothing to flag."""
    findings = analyze_source(
        "from multiprocessing import get_context, shared_memory\n"
        "\n"
        "def _worker_main(conn, seg):\n"
        "    seg.close()\n"
        "    conn.close()\n"
        "\n"
        "def launch(conn):\n"
        "    ctx = get_context('fork')\n"
        "    seg = shared_memory.SharedMemory(create=True, size=64)\n"
        "    proc = ctx.Process(target=_worker_main, args=(conn, seg), daemon=True)\n"
        "    proc.start()\n"
        "    seg.close()\n"
        "    seg.unlink()\n"
        "    return proc\n"
    )
    assert findings == []


def test_vh603_spawn_context_process_args_are_flagged():
    findings = analyze_source(
        "from multiprocessing import get_context\n"
        "import threading\n"
        "\n"
        "def _worker_main(lock):\n"
        "    return lock\n"
        "\n"
        "def launch():\n"
        "    ctx = get_context('spawn')\n"
        "    lock = threading.Lock()\n"
        "    proc = ctx.Process(target=_worker_main, args=(lock,), daemon=True)\n"
        "    proc.start()\n"
        "    return proc\n"
    )
    assert [f.rule for f in findings] == ["VH603"]
    assert "spawn" in findings[0].message


def test_vh604_generator_shipped_to_worker_loop_fires():
    findings = analyze_source(
        "from multiprocessing import get_context\n"
        "import numpy as np\n"
        "\n"
        "def _run(rng):\n"
        "    return rng\n"
        "\n"
        "def launch(n):\n"
        "    ctx = get_context('fork')\n"
        "    rng = np.random.default_rng(7)\n"
        "    procs = []\n"
        "    for _ in range(n):\n"
        "        procs.append(ctx.Process(target=_run, args=(rng,)))\n"
        "    return procs\n"
    )
    assert {f.rule for f in findings} == {"VH604"}
    assert "identical" in findings[0].message


def test_vh605_pinned_fork_context_is_allowed():
    """get_context('fork') is the fabric's documented contract — only
    *unpinned* / accidental start methods are VH605 material."""
    findings = analyze_source(
        "from multiprocessing import get_context\n"
        "\n"
        "def _worker_main(conn):\n"
        "    conn.close()\n"
        "\n"
        "def launch(conn):\n"
        "    ctx = get_context('fork')\n"
        "    lock = ctx.Lock()\n"
        "    proc = ctx.Process(target=_worker_main, args=(conn,), daemon=True)\n"
        "    proc.start()\n"
        "    return proc, lock\n"
    )
    assert findings == []


def test_vh605_os_fork_fires():
    findings = analyze_source(
        "import os\n"
        "\n"
        "def serve():\n"
        "    return os.fork()\n"
    )
    assert [f.rule for f in findings] == ["VH605"]
    assert "os.fork" in findings[0].message


def test_noqa_suppresses_concurrency_findings():
    findings = analyze_source(
        "import os\n"
        "\n"
        "def serve():\n"
        "    return os.fork()  # vihot: noqa[VH605]\n"
    )
    assert findings == []


def test_rule_catalogue_is_documented():
    for rule in concurrency_rules():
        assert rule.id.startswith("VH6")
        assert rule.name
        assert rule.description
        assert rule.rationale
        assert rule.example, f"{rule.id} needs an --explain example"
