"""Golden-fixture and behaviour tests for the VH3xx domain-flow rules."""

from pathlib import Path

import pytest

from repro.analysis import Allowlist, AllowlistEntry, Analyzer, dataflow_rules

FIXTURES = Path(__file__).parent / "fixtures"

#: rule id -> fixture stem, mirroring test_rules.RULE_FIXTURES for the
#: dataflow series.  VH304 needs two modules and is tested separately
#: against the ``dfpkg`` fixture package.
DATAFLOW_FIXTURES = {
    "VH301": FIXTURES / "vh301",
    "VH302": FIXTURES / "vh302",
    "VH303": FIXTURES / "vh303",
    "VH401": FIXTURES / "vh401",
    "VH402": FIXTURES / "vh402",
}


def analyze_file(path):
    return Analyzer(dataflow_rules()).check_file(path)


def test_every_dataflow_rule_has_a_fixture():
    covered = set(DATAFLOW_FIXTURES) | {"VH304"}
    assert {r.id for r in dataflow_rules()} == covered
    for stem in DATAFLOW_FIXTURES.values():
        assert stem.with_name(stem.name + "_trigger.py").exists()
        assert stem.with_name(stem.name + "_clean.py").exists()


@pytest.mark.parametrize("rule_id", sorted(DATAFLOW_FIXTURES))
def test_trigger_fixture_fires_exactly_its_rule(rule_id):
    stem = DATAFLOW_FIXTURES[rule_id]
    findings = analyze_file(stem.with_name(stem.name + "_trigger.py"))
    assert findings, f"{rule_id} trigger fixture produced no findings"
    assert {f.rule for f in findings} == {rule_id}


@pytest.mark.parametrize("rule_id", sorted(DATAFLOW_FIXTURES))
def test_clean_fixture_is_silent(rule_id):
    stem = DATAFLOW_FIXTURES[rule_id]
    findings = analyze_file(stem.with_name(stem.name + "_clean.py"))
    assert findings == []


def test_cross_module_leak_is_vh304():
    findings = Analyzer(dataflow_rules()).run([FIXTURES / "dfpkg"])
    assert [f.rule for f in findings] == ["VH304"]
    (finding,) = findings
    assert finding.path.endswith("consumer.py")
    assert "store_phase" in finding.message
    assert "wrapped_rad" in finding.message
    assert finding.trace, "cross-module findings must carry a domain trace"


def test_findings_carry_domain_trace():
    stem = DATAFLOW_FIXTURES["VH301"]
    (finding,) = analyze_file(stem.with_name(stem.name + "_trigger.py"))
    assert finding.trace
    assert any("heading_deg" in step for step in finding.trace)
    assert finding.as_dict()["trace"] == list(finding.trace)


WRAPPED_DIFF_SRC = """\
import numpy as np


def latest_phase(csi):
    return np.angle(csi)


def drift(csi):
    return np.diff(latest_phase(csi))
"""


def test_inferred_return_domain_propagates_across_calls():
    # latest_phase has no declared domain; its wrapped_rad return is
    # inferred and the np.diff consumption in drift() still flags.
    findings = Analyzer(dataflow_rules()).check_source(WRAPPED_DIFF_SRC)
    assert [f.rule for f in findings] == ["VH302"]
    assert "np.diff" in findings[0].message or "numpy.diff" in findings[0].message


def test_inline_noqa_suppresses_dataflow_finding():
    src = WRAPPED_DIFF_SRC.replace(
        "return np.diff(latest_phase(csi))",
        "return np.diff(latest_phase(csi))  # vihot: noqa[VH302]",
    )
    assert Analyzer(dataflow_rules()).check_source(src) == []


def test_allowlist_suppresses_dataflow_finding(tmp_path):
    path = tmp_path / "synthetic" / "mod.py"
    path.parent.mkdir()
    path.write_text(WRAPPED_DIFF_SRC, encoding="utf-8")
    allowlist = Allowlist(
        [AllowlistEntry(suffix="synthetic/mod.py", rule="VH302", reason="test")]
    )
    assert Analyzer(dataflow_rules(), allowlist=allowlist).run([path]) == []


def test_wrapped_mean_flags_and_circular_mean_does_not():
    bad = """\
import numpy as np


def avg(csi):
    return np.mean(np.angle(csi))
"""
    good = """\
import numpy as np

from repro.dsp.phase import circular_mean


def avg(csi):
    return circular_mean(np.angle(csi))
"""
    assert [f.rule for f in Analyzer(dataflow_rules()).check_source(bad)] == ["VH302"]
    assert Analyzer(dataflow_rules()).check_source(good) == []


def test_annotated_marker_seeds_domains():
    src = """\
from typing import Annotated

import numpy as np

from repro.units import Domain


def tilt(angle: Annotated[float, Domain("deg")]) -> float:
    return float(np.cos(angle))
"""
    findings = Analyzer(dataflow_rules()).check_source(src)
    assert [f.rule for f in findings] == ["VH301"]


def test_hz_times_two_pi_converts_domain():
    src = """\
import numpy as np


def advance(omega):
    '''
    :domain omega: rad_per_s
    '''
    return omega


def from_freq(f_hz):
    '''
    :domain f_hz: hz
    '''
    return advance(2.0 * np.pi * f_hz)
"""
    assert Analyzer(dataflow_rules()).check_source(src) == []
