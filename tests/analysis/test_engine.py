"""Engine-level behaviour: findings, suppression, alias resolution."""

from pathlib import Path

import pytest

from repro.analysis import (
    Allowlist,
    AllowlistEntry,
    Analyzer,
    Severity,
    default_rules,
)
from repro.analysis.determinism import GlobalNumpyRandomRule, UnseededGeneratorRule


def analyze(source, path=None, allowlist=None):
    analyzer = Analyzer(default_rules(), allowlist=allowlist)
    return analyzer.check_source(source, path=path)


def test_finding_has_location_rule_and_severity():
    findings = analyze("import numpy as np\nx = np.random.rand(3)\n")
    assert len(findings) == 1
    f = findings[0]
    assert f.rule == "VH101"
    assert f.line == 2
    assert f.severity is Severity.ERROR
    assert "<string>:2:" in f.format()
    assert f.as_dict()["rule"] == "VH101"


def test_syntax_error_becomes_vh000():
    findings = analyze("def broken(:\n")
    assert [f.rule for f in findings] == ["VH000"]
    assert "syntax error" in findings[0].message


def test_alias_resolution_through_import_from():
    source = "from numpy.random import default_rng as mk\nrng = mk()\n"
    assert [f.rule for f in analyze(source)] == ["VH104"]


def test_alias_resolution_through_module_alias():
    source = "import numpy.random as nr\nx = nr.shuffle([1, 2])\n"
    assert [f.rule for f in analyze(source)] == ["VH101"]


def test_local_variable_named_time_is_not_a_clock():
    # No `import time` in the module: `time()` can only be a local.
    source = "def run(time):\n    return time.time()\n"
    assert analyze(source) == []


def test_inline_noqa_with_matching_rule_suppresses():
    source = "import numpy as np\nx = np.random.rand(3)  # vihot: noqa[VH101]\n"
    assert analyze(source) == []


def test_inline_noqa_bare_suppresses_everything():
    source = "import numpy as np\nx = np.random.rand(3)  # vihot: noqa\n"
    assert analyze(source) == []


def test_inline_noqa_with_other_rule_does_not_suppress():
    source = "import numpy as np\nx = np.random.rand(3)  # vihot: noqa[VH104]\n"
    assert [f.rule for f in analyze(source)] == ["VH101"]


def test_allowlist_suffix_match_suppresses_only_that_rule():
    allowlist = Allowlist(
        [AllowlistEntry(suffix="repro/cli.py", rule="VH103", reason="timing")]
    )
    source = "import time\nimport numpy as np\nt = time.time()\nx = np.random.rand(2)\n"
    findings = analyze(source, path=Path("src/repro/cli.py"), allowlist=allowlist)
    assert [f.rule for f in findings] == ["VH101"]


def test_allowlist_does_not_match_other_files():
    allowlist = Allowlist(
        [AllowlistEntry(suffix="repro/cli.py", rule="VH103", reason="timing")]
    )
    source = "import time\nt = time.time()\n"
    findings = analyze(source, path=Path("src/repro/core/engine.py"), allowlist=allowlist)
    assert [f.rule for f in findings] == ["VH103"]


def test_duplicate_rule_ids_rejected():
    with pytest.raises(ValueError, match="duplicate rule ids"):
        Analyzer([GlobalNumpyRandomRule(), GlobalNumpyRandomRule()])


def test_relativize_strips_down_to_package_root():
    analyzer = Analyzer([UnseededGeneratorRule()])
    findings = analyzer.check_source(
        "import numpy as np\nr = np.random.default_rng()\n",
        path=Path("/somewhere/site-packages/repro/core/engine.py"),
    )
    assert findings[0].path == "repro/core/engine.py"


def test_iter_files_skips_pycache(tmp_path):
    good = tmp_path / "mod.py"
    good.write_text("import numpy as np\nr = np.random.default_rng()\n")
    cached = tmp_path / "__pycache__" / "mod.py"
    cached.parent.mkdir()
    cached.write_text("import numpy as np\nr = np.random.default_rng()\n")
    analyzer = Analyzer(default_rules())
    findings = analyzer.run([tmp_path])
    assert len(findings) == 1
    assert "__pycache__" not in findings[0].path
