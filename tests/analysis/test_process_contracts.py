"""The VH6xx runtime cross-check: shm ledger, kernel probe, divergence.

The static pass trusts what the call graph shows; this suite verifies
the wrappers observe what actually happens — every ring acquisition and
release is recorded, a leaked segment is caught by the kernel probe
even when the ledger is blind (forked children record in their own
memory), and no two workers share an RNG stream or a ring.  The full
T2-flagship / ``t2-sharded-rush`` cross-check runs in CI as
``pytest tests/scenarios/test_sharded_identity.py --process-contracts``
(bit-identity asserted by the tests, balance by the plugin); this file
pins the mechanism at unit scale.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis import process_contracts
from repro.analysis.process_contracts import (
    ContractViolation,
    WorkerRecord,
    _generator_digests,
)
from repro.core.config import ViHOTConfig
from repro.serve.fabric import ServingFabric, ShardWorker
from repro.serve.loadgen import (
    SYNTHETIC_FINGERPRINT,
    SyntheticCabin,
    synthetic_profile,
)
from repro.serve.shm import SharedCsiRing

CONFIG = ViHOTConfig(profile_stride=8, num_length_candidates=3)
PROFILE = synthetic_profile()
MANAGER_KWARGS = dict(
    budget_s=1.0, stride_s=0.25, idle_timeout_s=100.0, buffer_s=6.0
)


@pytest.fixture()
def contracts():
    """Activated wrappers with a clean slate, restored afterwards.

    Plugin-aware: when the session already runs under
    ``--process-contracts`` the wrappers stay installed and the
    session-level ledger is preserved (events appended here remain,
    which is correct — they are balanced by teardown).
    """
    was_active = process_contracts.active()
    if not was_active:
        process_contracts.activate()
    start = len(process_contracts.records())
    yield start
    if not was_active:
        process_contracts.deactivate()
        process_contracts.clear_records()


def _events_since(start):
    return process_contracts.records()[start:]


def test_activate_is_idempotent_and_deactivate_restores():
    was_active = process_contracts.active()
    if was_active:
        pytest.skip("session runs under --process-contracts")
    original_init = SharedCsiRing.__init__
    count = process_contracts.activate()
    assert count == process_contracts.activate()  # second call: no-op
    assert process_contracts.active()
    assert SharedCsiRing.__init__ is not original_init
    process_contracts.deactivate()
    process_contracts.clear_records()
    assert SharedCsiRing.__init__ is original_init
    assert not process_contracts.active()


def test_ring_lifecycle_is_recorded_and_balanced(contracts):
    ring = SharedCsiRing(4, (2, 8))
    acquires = [e for e in _events_since(contracts) if e.kind == "acquire"]
    assert [e.name for e in acquires] == [ring.name]
    assert acquires[0].owner is True
    ring.close(unlink=True)
    releases = [e for e in _events_since(contracts) if e.kind == "release"]
    assert [e.name for e in releases] == [ring.name]
    assert releases[0].unlink is True
    process_contracts.assert_balanced()


def test_leaked_ring_fails_assert_balanced(contracts):
    ring = SharedCsiRing(4, (2, 8))
    try:
        with pytest.raises(ContractViolation, match="never released"):
            process_contracts.assert_balanced()
    finally:
        ring.close(unlink=True)
    process_contracts.assert_balanced()  # released now: the probe agrees


def test_kernel_probe_excuses_externally_released_segments(contracts):
    """A segment with no ledger release but gone from the kernel (the
    forked-child case: the child recorded its attach in its own memory,
    the parent unlinked) must not count as a leak."""
    ring = SharedCsiRing(4, (2, 8))
    name = ring.name
    # Simulate the blind spot: drop the release event the wrapper just
    # recorded, leaving an acquire with no matching release on record.
    ring.close(unlink=True)
    events = [
        e
        for e in process_contracts._EVENTS
        if not (e.kind == "release" and e.name == name)
    ]
    process_contracts._EVENTS[:] = events
    assert name in process_contracts._unreleased_names()
    process_contracts.assert_balanced()  # kernel probe: segment is gone


def test_two_workers_on_one_ring_fail_divergence(contracts):
    ring = SharedCsiRing(8, (2, 8))
    try:
        ShardWorker(ring, dict(config=CONFIG, **MANAGER_KWARGS))
        ShardWorker(ring, dict(config=CONFIG, **MANAGER_KWARGS))
        with pytest.raises(ContractViolation, match="share CSI ring"):
            process_contracts.assert_worker_divergence()
    finally:
        # Repair the deliberately-broken state so a session-level
        # plugin check doesn't inherit the violation.
        del process_contracts._WORKERS[-2:]
        ring.close(unlink=True)


def test_shared_rng_stream_fails_divergence():
    records = [
        WorkerRecord(pid=100, ring_name="ring-a", rng_digests=("d1",)),
        WorkerRecord(pid=101, ring_name="ring-b", rng_digests=("d1",)),
    ]
    process_contracts._WORKERS.extend(records)
    try:
        with pytest.raises(ContractViolation, match="share RNG stream"):
            process_contracts.assert_worker_divergence()
    finally:
        del process_contracts._WORKERS[-2:]


def test_generator_digests_find_nested_generators_and_distinguish_streams():
    rng_a = np.random.default_rng(1)
    rng_b = np.random.default_rng(2)
    nested = {"kwargs": {"inner": [rng_a]}, "other": (rng_b,)}
    digests = _generator_digests(nested)
    assert len(digests) == 2
    assert len(set(digests)) == 2  # distinct seeds -> distinct states
    # Same seed, same position -> same digest (what fork would produce).
    assert _generator_digests(np.random.default_rng(1)) == _generator_digests(
        np.random.default_rng(1)
    )


def test_forked_fabric_run_is_balanced_under_contracts(contracts):
    """End-to-end at unit scale: a 4-worker forked fabric serves a small
    fleet under the wrappers — ledger balanced, workers divergent, and
    the kernel has forgotten every segment after close."""
    cabins = [
        SyntheticCabin(f"pc-{k:03d}", seed=k, duration_s=1.0, rate_hz=100.0)
        for k in range(6)
    ]
    with ServingFabric(
        CONFIG, workers=4, processes=True, **MANAGER_KWARGS
    ) as fabric:
        for cabin in cabins:
            fabric.open_session(
                cabin.cabin_id,
                fingerprint=SYNTHETIC_FINGERPRINT,
                build_profile=lambda: PROFILE,
            )
        for k in range(len(cabins[0].times)):
            t = float(cabins[0].times[k])
            for cabin in cabins:
                fabric.ingest(cabin.cabin_id, t, cabin.csi_at(k))
        fabric.tick()
    acquires = [e for e in _events_since(contracts) if e.kind == "acquire"]
    assert len(acquires) == 4  # one ring per worker, acquired pre-fork
    process_contracts.assert_balanced()
    process_contracts.assert_worker_divergence()
    stats = process_contracts.summary()
    assert stats["unreleased"] == 0
