"""Golden fixture tests: every rule has a trigger file and a clean twin.

The trigger fixture must produce at least one finding *for its rule* and
nothing else; the clean twin must produce no findings at all.  Keeping
the snippets as real files (``tests/analysis/fixtures/``) documents the
exact shape each rule fires on — they double as the rule catalogue's
examples.
"""

from pathlib import Path

import pytest

from repro.analysis import Analyzer, default_rules

FIXTURES = Path(__file__).parent / "fixtures"

#: rule id -> fixture stem (VH202 lives under repro/core/ because the
#: annotation rule only covers the typed packages).
RULE_FIXTURES = {
    "VH101": FIXTURES / "vh101",
    "VH102": FIXTURES / "vh102",
    "VH103": FIXTURES / "vh103",
    "VH104": FIXTURES / "vh104",
    "VH105": FIXTURES / "vh105",
    "VH201": FIXTURES / "vh201",
    "VH202": FIXTURES / "repro" / "core" / "vh202",
    "VH203": FIXTURES / "vh203",
    "VH204": FIXTURES / "vh204",
    "VH205": FIXTURES / "vh205",
}


def analyze_file(path):
    return Analyzer(default_rules()).check_file(path)


def test_every_default_rule_has_a_fixture_pair():
    assert {r.id for r in default_rules()} == set(RULE_FIXTURES)
    for stem in RULE_FIXTURES.values():
        assert stem.with_name(stem.name + "_trigger.py").exists()
        assert stem.with_name(stem.name + "_clean.py").exists()


@pytest.mark.parametrize("rule_id", sorted(RULE_FIXTURES))
def test_trigger_fixture_fires_exactly_its_rule(rule_id):
    stem = RULE_FIXTURES[rule_id]
    findings = analyze_file(stem.with_name(stem.name + "_trigger.py"))
    assert findings, f"{rule_id} trigger fixture produced no findings"
    assert {f.rule for f in findings} == {rule_id}


@pytest.mark.parametrize("rule_id", sorted(RULE_FIXTURES))
def test_clean_fixture_is_silent(rule_id):
    stem = RULE_FIXTURES[rule_id]
    findings = analyze_file(stem.with_name(stem.name + "_clean.py"))
    assert findings == []


def test_inline_noqa_fixture_is_silent():
    assert analyze_file(FIXTURES / "noqa_inline.py") == []


def test_findings_are_sorted_and_carry_real_lines():
    findings = Analyzer(default_rules()).run([FIXTURES])
    assert findings == sorted(findings)
    assert all(f.line >= 1 for f in findings)
