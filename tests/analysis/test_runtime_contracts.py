"""The runtime shape/dtype contract cross-check.

Static VH5xx rules trust the ``:shape``/``:dtype`` markers; these tests
pin the other half of the bargain: the wrappers installed by
``repro.analysis.runtime_contracts`` observe real kernel traffic, fail
on divergence, and change nothing about the values that flow through.
"""

import numpy as np
import pytest

from repro.analysis import runtime_contracts as rc
from repro.dsp import dtw as dtw_module
from repro.dsp.dtw import batched_dtw_distance, stacked_dtw_distance
from repro.dsp.phase import unwrap_phase
from repro.dsp.windows import sliding_windows


@pytest.fixture()
def contract_slate():
    """Exclusive control of activation for one test.

    The suite may itself be running under ``--runtime-contracts``
    (session-wide wrappers); these tests manage activation by hand, so
    start from a deactivated slate and restore whatever was in place.
    """
    was_active = rc.active()
    rc.deactivate()
    rc.clear_records()
    try:
        yield rc
    finally:
        rc.deactivate()
        rc.clear_records()
        if was_active:
            rc.activate()


@pytest.fixture()
def contracts(contract_slate):
    """Contracts active for one test, restored afterwards no matter what."""
    contract_slate.activate()
    return contract_slate


def test_activate_is_idempotent_and_deactivate_restores(contract_slate):
    original = dtw_module.batched_dtw_distance
    assert rc.activate() == len(rc.CONTRACT_BOUNDARIES)
    assert rc.activate() == len(rc.CONTRACT_BOUNDARIES)  # no double-wrap
    assert rc.active()
    patched = dtw_module.batched_dtw_distance
    assert patched is not original
    assert getattr(patched, "__vihot_contract__", None) is not None
    rc.deactivate()
    assert not rc.active()
    assert dtw_module.batched_dtw_distance is original


def test_every_boundary_parses_and_declares_something():
    for boundary in rc.CONTRACT_BOUNDARIES:
        contract = rc._parse_contract(boundary)
        assert contract.shapes or contract.dtypes or contract.shape_return


def test_observed_kernel_traffic_is_recorded(contracts):
    bank = sliding_windows(np.linspace(0.0, 1.0, 32), 8, 2)
    distances = batched_dtw_distance(np.zeros(8), bank)
    assert distances.shape == (len(bank),)
    counts = rc.summary()
    assert counts["repro.dsp.windows.sliding_windows"] == 1
    assert counts["repro.dsp.dtw.batched_dtw_distance"] == 1
    record = next(
        r for r in rc.records() if r.boundary.endswith("sliding_windows")
    )
    bound = dict(record.bindings)
    assert bound["T"] == 32
    assert bound["B"] == len(bank)
    assert bound["L"] == 8


def test_symbol_bindings_are_consistent_within_one_call(contracts):
    queries = np.zeros((3, 8))
    bank = sliding_windows(np.linspace(0.0, 1.0, 32), 8, 2)
    stacked = np.stack([bank] * 3)
    distances = stacked_dtw_distance(queries, stacked)
    record = next(
        r for r in rc.records() if r.boundary.endswith("stacked_dtw_distance")
    )
    bound = dict(record.bindings)
    assert bound["S"] == 3 and bound["B"] == len(bank) and bound["L"] == 8
    assert distances.shape == (3, len(bank))


def test_kernel_validation_errors_propagate_unchecked(contracts):
    # The kernel's own loud error wins; contracts judge only calls the
    # kernel accepted.
    with pytest.raises(ValueError):
        unwrap_phase(np.zeros((3, 4)))
    assert not any(
        r.boundary.endswith("unwrap_phase") for r in rc.records()
    )


def _lying_kernel(queries, candidates):
    """A kernel whose return shape breaks its own declaration.

    :shape queries: (S, m)
    :shape candidates: (B, L) | (S, B, L)
    :shape return: (S, B)
    :dtype return: float64
    """
    return np.zeros((queries.shape[0] + 1, candidates.shape[0]))


def test_divergent_return_shape_raises(contract_slate, monkeypatch):
    monkeypatch.setattr(
        rc,
        "CONTRACT_BOUNDARIES",
        (f"{__name__}._lying_kernel",),
    )
    rc.activate()
    lying = rc._ACTIVE[0]
    wrapped = getattr(__import__(__name__, fromlist=["x"]), "_lying_kernel")
    assert getattr(wrapped, "__vihot_contract__", None) is lying
    with pytest.raises(rc.ContractViolation, match="return"):
        wrapped(np.zeros((2, 5)), np.zeros((4, 9)))


def _mismatched_axes_kernel(queries, candidates):
    """A kernel declaration the caller below cannot satisfy.

    :shape queries: (S, m)
    :shape candidates: (S, B, L)
    """
    return float(queries.shape[0] + candidates.shape[0])


def test_inconsistent_symbol_binding_raises(contract_slate, monkeypatch):
    monkeypatch.setattr(
        rc,
        "CONTRACT_BOUNDARIES",
        (f"{__name__}._mismatched_axes_kernel",),
    )
    rc.activate()
    wrapped = getattr(
        __import__(__name__, fromlist=["x"]), "_mismatched_axes_kernel"
    )
    # S binds to 2 via queries, then candidates leads with 3.
    with pytest.raises(rc.ContractViolation, match="candidates"):
        wrapped(np.zeros((2, 5)), np.zeros((3, 4, 9)))
    # Consistent S passes.
    wrapped(np.zeros((2, 5)), np.zeros((2, 4, 9)))


def test_tracker_output_is_bit_identical_under_contracts(
    contract_slate, small_scenario, small_profile
):
    from repro.experiments.runner import run_tracking_session

    plain = run_tracking_session(small_scenario, small_profile)
    rc.activate()
    checked = run_tracking_session(small_scenario, small_profile)
    assert rc.summary(), "the tracker crossed no annotated boundary"
    assert np.array_equal(
        plain.tracking.orientations, checked.tracking.orientations
    )
    assert np.array_equal(
        plain.tracking.target_times, checked.tracking.target_times
    )


@pytest.mark.parametrize(
    "scenario_name", ["t0-calm-commute", "t2-downtown-interference"]
)
def test_flagship_scenarios_pass_under_contracts(contract_slate, scenario_name):
    """The ISSUE acceptance runs: T0 and T2 flagship traffic crosses the
    annotated boundaries with zero contract violations."""
    from repro.scenarios import get_scenario, run_scenario_chaos

    rc.activate()
    result = run_scenario_chaos(get_scenario(scenario_name))
    assert result.unhandled == 0
    assert result.all_healthy
    counts = rc.summary()
    assert counts, "scenario traffic crossed no annotated boundary"
    assert any("dtw" in boundary for boundary in counts)
