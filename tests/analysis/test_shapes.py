"""Golden-fixture and behaviour tests for the VH5xx shape/dtype rules."""

from pathlib import Path

import pytest

from repro.analysis import Analyzer, shape_rules
from repro.analysis.dtypes import is_silent_downcast, promote

FIXTURES = Path(__file__).parent / "fixtures"

SHAPE_FIXTURES = {
    "VH501": FIXTURES / "vh501",
    "VH502": FIXTURES / "vh502",
    "VH503": FIXTURES / "vh503",
    "VH504": FIXTURES / "vh504",
}


def analyze_file(path):
    return Analyzer(shape_rules()).check_file(path)


def analyze_source(src):
    return Analyzer(shape_rules()).check_source(src)


def test_every_shape_rule_has_a_fixture():
    assert {r.id for r in shape_rules()} == set(SHAPE_FIXTURES)
    for stem in SHAPE_FIXTURES.values():
        assert stem.with_name(stem.name + "_trigger.py").exists()
        assert stem.with_name(stem.name + "_clean.py").exists()


@pytest.mark.parametrize("rule_id", sorted(SHAPE_FIXTURES))
def test_trigger_fixture_fires_exactly_its_rule(rule_id):
    stem = SHAPE_FIXTURES[rule_id]
    findings = analyze_file(stem.with_name(stem.name + "_trigger.py"))
    assert findings, f"{rule_id} trigger fixture produced no findings"
    assert {f.rule for f in findings} == {rule_id}


@pytest.mark.parametrize("rule_id", sorted(SHAPE_FIXTURES))
def test_clean_fixture_is_silent(rule_id):
    stem = SHAPE_FIXTURES[rule_id]
    findings = analyze_file(stem.with_name(stem.name + "_clean.py"))
    assert findings == []


def test_vh502_message_names_the_fix():
    stem = SHAPE_FIXTURES["VH502"]
    (finding,) = analyze_file(stem.with_name(stem.name + "_trigger.py"))
    assert "permutation" in finding.message
    assert "transpose" in finding.message
    assert "(S, m)" in finding.message  # the declared order
    assert finding.trace, "shape findings must carry a flow trace"


def test_vh503_message_suggests_explicit_cast():
    stem = SHAPE_FIXTURES["VH503"]
    (finding,) = analyze_file(stem.with_name(stem.name + "_trigger.py"))
    assert "astype" in finding.message
    assert "complex128" in finding.message
    assert "float64" in finding.message


STACKED_SRC = """\
import numpy as np


def stacked(queries, candidates):
    '''Stacked scorer.

    :shape queries: (S, m)
    :shape candidates: (B, L) | (S, B, L)
    :shape return: (S, B)
    :dtype return: float64
    '''
    return np.zeros((len(queries), len(candidates)))
"""


def test_shape_alternatives_accept_either_rank():
    src = STACKED_SRC + """\


def run(queries, bank, stack):
    '''
    :shape queries: (S, m)
    :shape bank: (B, L)
    :shape stack: (S, B, L)
    '''
    a = stacked(queries, bank)
    b = stacked(queries, stack)
    return a + b
"""
    assert analyze_source(src) == []


def test_declared_return_shape_flows_to_callers():
    # stacked() returns (S, B); feeding that back as (S, m) queries is a
    # symbol mismatch on the second axis -> VH501.
    src = STACKED_SRC + """\


def run(queries, bank):
    '''
    :shape queries: (S, m)
    :shape bank: (B, L)
    '''
    scores = stacked(queries, bank)
    return stacked(scores, bank)
"""
    findings = analyze_source(src)
    assert [f.rule for f in findings] == ["VH501"]
    assert "scores" in "".join(findings[0].trace) or "(S, B)" in findings[0].message


def test_explicit_astype_silences_vh503():
    src = """\
import numpy as np


def smooth(phases):
    '''
    :shape phases: (T,)
    :dtype phases: float64
    '''
    return phases


def run(csi):
    '''
    :shape csi: (T,)
    :dtype csi: complex128
    '''
    return smooth(np.abs(csi).astype(np.float64))
"""
    assert analyze_source(src) == []


def test_return_dtype_downcast_is_vh503():
    src = """\
import numpy as np


def track(phases):
    '''
    :shape phases: (T,)
    :dtype phases: float64
    :dtype return: float64
    '''
    return phases.astype(np.float32)
"""
    findings = analyze_source(src)
    assert [f.rule for f in findings] == ["VH503"]


def test_bounded_slice_degrades_axis_without_flagging():
    # query[::decimation] has an unknown length; unknown matches any
    # declared symbol, so no finding (the pass never guesses).
    src = """\
def scorer(query):
    '''
    :shape query: (m,)
    '''
    return float(len(query))


def run(query, decimation):
    '''
    :shape query: (m,)
    '''
    return scorer(query[::decimation])
"""
    assert analyze_source(src) == []


def test_inline_noqa_suppresses_shape_finding():
    stem = SHAPE_FIXTURES["VH501"]
    src = stem.with_name(stem.name + "_trigger.py").read_text(encoding="utf-8")
    src = src.replace(
        "return bank_scores(candidates, candidates)",
        "return bank_scores(candidates, candidates)  # vihot: noqa[VH501]",
    )
    assert analyze_source(src) == []


def test_rules_carry_explain_material():
    for rule in shape_rules():
        assert rule.description
        assert rule.rationale
        assert rule.example.strip(), f"{rule.id} has no --explain example"


def test_dtype_lattice_downcasts():
    assert is_silent_downcast("complex128", "float64")
    assert is_silent_downcast("complex64", "float32")
    assert is_silent_downcast("float64", "float32")
    assert is_silent_downcast("complex128", "complex64")
    assert not is_silent_downcast("float32", "float64")
    assert not is_silent_downcast("float64", "complex128")
    assert not is_silent_downcast("float64", "float64")
    # int narrowing is out of scope for VH503
    assert not is_silent_downcast("int64", "int32")


def test_dtype_lattice_promotion():
    assert promote("float64", "float64") == "float64"
    assert promote("float32", "float64") == "float64"
    assert promote("float64", "complex128") == "complex128"
    assert promote("int64", "float64") == "float64"
    assert promote("bool", "float32") == "float32"
