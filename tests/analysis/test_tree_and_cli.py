"""The shipped tree must be lint-clean, and the CLI must gate on findings."""

import json

import pytest

from repro.analysis import DEFAULT_ALLOWLIST, default_rules, run_analysis
from repro.cli import main
from tests.analysis.test_rules import FIXTURES


def test_shipped_tree_is_clean():
    """The acceptance gate CI enforces: zero findings on the repro package."""
    findings = run_analysis()
    assert findings == [], "\n".join(f.format() for f in findings)


def test_allowlist_is_load_bearing():
    """Audit mode: without the reviewed allowlist the measurement code's
    clock reads resurface — proving entries are consulted, not dead."""
    findings = run_analysis(use_default_allowlist=False)
    assert findings, "expected the allowlisted VH103 clock reads to resurface"
    assert {f.rule for f in findings} == {"VH103"}
    allowed = {entry.suffix for entry in DEFAULT_ALLOWLIST.entries}
    assert {f.path for f in findings} <= {f"{s}" for s in allowed}


def test_every_allowlist_entry_has_a_reason():
    for entry in DEFAULT_ALLOWLIST.entries:
        assert entry.reason.strip(), f"allowlist entry {entry.suffix} lacks a reason"
        assert entry.rule.startswith("VH")


def test_cli_lint_clean_tree_exits_zero(capsys):
    assert main(["lint"]) == 0
    assert "vihot lint: clean" in capsys.readouterr().out


def test_cli_lint_fixture_dir_exits_nonzero(capsys):
    rc = main(["lint", str(FIXTURES)])
    captured = capsys.readouterr()
    assert rc == 1
    assert "VH101" in captured.out
    assert "finding(s)" in captured.err


def test_cli_lint_json_format_is_parseable(capsys):
    rc = main(["lint", "--format", "json", str(FIXTURES)])
    assert rc == 1
    payload = json.loads(capsys.readouterr().out)
    assert {f["rule"] for f in payload} >= {"VH101", "VH201", "VH204"}
    assert all({"path", "line", "col", "severity", "message"} <= set(f) for f in payload)


def test_cli_list_rules_prints_catalogue(capsys):
    assert main(["lint", "--list-rules"]) == 0
    out = capsys.readouterr().out
    for rule in default_rules():
        assert rule.id in out
        assert rule.name in out


def test_mypy_config_present_in_pyproject():
    """The strict-typing half of the CI analysis job is configured even
    though mypy itself only runs in CI (it is not a runtime dependency)."""
    from pathlib import Path

    try:
        import tomllib
    except ModuleNotFoundError:  # py < 3.11
        pytest.skip("tomllib unavailable")
    root = Path(__file__).resolve().parents[2]
    config = tomllib.loads((root / "pyproject.toml").read_text())
    mypy = config["tool"]["mypy"]
    assert mypy["packages"] == ["repro"]
    strict = config["tool"]["mypy"]["overrides"][0]
    assert "repro.core.*" in strict["module"]
    assert strict["disallow_untyped_defs"] is True
