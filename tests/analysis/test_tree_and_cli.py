"""The shipped tree must be lint-clean, and the CLI must gate on findings."""

import json

import pytest

from repro.analysis import DEFAULT_ALLOWLIST, dataflow_rules, default_rules, run_analysis
from repro.cli import main
from tests.analysis.test_rules import FIXTURES


def test_shipped_tree_is_clean():
    """The acceptance gate CI enforces: zero findings on the repro package."""
    findings = run_analysis()
    assert findings == [], "\n".join(f.format() for f in findings)


def test_shipped_tree_is_dataflow_clean():
    """The --dataflow gate: domain-flow and aliasing rules included."""
    findings = run_analysis(dataflow=True)
    assert findings == [], "\n".join(f.format() for f in findings)


def test_allowlist_is_load_bearing():
    """Audit mode: without the reviewed allowlist the measurement code's
    clock reads resurface — proving entries are consulted, not dead."""
    findings = run_analysis(use_default_allowlist=False)
    assert findings, "expected the allowlisted VH103 clock reads to resurface"
    assert {f.rule for f in findings} == {"VH103"}
    allowed = {entry.suffix for entry in DEFAULT_ALLOWLIST.entries}
    assert {f.path for f in findings} <= {f"{s}" for s in allowed}


def test_every_allowlist_entry_has_a_reason():
    for entry in DEFAULT_ALLOWLIST.entries:
        assert entry.reason.strip(), f"allowlist entry {entry.suffix} lacks a reason"
        assert entry.rule.startswith("VH")


def test_cli_lint_clean_tree_exits_zero(capsys):
    assert main(["lint"]) == 0
    assert "vihot lint: clean" in capsys.readouterr().out


def test_cli_lint_fixture_dir_exits_nonzero(capsys):
    rc = main(["lint", str(FIXTURES)])
    captured = capsys.readouterr()
    assert rc == 1
    assert "VH101" in captured.out
    assert "finding(s)" in captured.err


def test_cli_lint_json_format_is_parseable(capsys):
    rc = main(["lint", "--format", "json", str(FIXTURES)])
    assert rc == 1
    payload = json.loads(capsys.readouterr().out)
    assert {f["rule"] for f in payload} >= {"VH101", "VH201", "VH204"}
    assert all({"path", "line", "col", "severity", "message"} <= set(f) for f in payload)


def test_cli_list_rules_prints_catalogue(capsys):
    assert main(["lint", "--list-rules"]) == 0
    out = capsys.readouterr().out
    for rule in default_rules():
        assert rule.id in out
        assert rule.name in out
    assert "VH301" not in out  # dataflow rules are opt-in


def test_cli_list_rules_with_dataflow_includes_vh3xx(capsys):
    assert main(["lint", "--list-rules", "--dataflow"]) == 0
    out = capsys.readouterr().out
    for rule in dataflow_rules():
        assert rule.id in out
        assert rule.name in out


def test_cli_dataflow_json_findings_carry_traces(capsys):
    rc = main(
        ["lint", "--dataflow", "--format", "json", str(FIXTURES / "vh301_trigger.py")]
    )
    assert rc == 1
    payload = json.loads(capsys.readouterr().out)
    flows = [f for f in payload if f["rule"] == "VH301"]
    assert flows, "expected a VH301 finding on the trigger fixture"
    assert all(isinstance(f["trace"], list) for f in flows)
    assert any(f["trace"] for f in flows), "domain findings must carry a trace"


def test_cli_dataflow_text_output_prints_trace_lines(capsys):
    rc = main(["lint", "--dataflow", str(FIXTURES / "vh301_trigger.py")])
    assert rc == 1
    out = capsys.readouterr().out
    assert "VH301" in out
    assert "    trace:" in out


def test_cli_budget_file_records_then_enforces(tmp_path, capsys):
    budget = tmp_path / "lint_baseline.json"
    target = str(FIXTURES / "vh301_clean.py")

    # First run: no budget file -> baseline is recorded, exit 0.
    assert main(["lint", "--dataflow", "--budget-file", str(budget), target]) == 0
    capsys.readouterr()
    recorded = json.loads(budget.read_text())
    assert recorded["baseline_s"] >= 0
    assert recorded["max_ratio"] == 2.0

    # Generous baseline -> within budget, exit 0.
    budget.write_text(json.dumps({"baseline_s": 1e6, "max_ratio": 2.0}))
    assert main(["lint", "--dataflow", "--budget-file", str(budget), target]) == 0
    capsys.readouterr()

    # Impossible baseline -> the regression gate trips, exit 1.
    budget.write_text(json.dumps({"baseline_s": 1e-9, "max_ratio": 2.0}))
    assert main(["lint", "--dataflow", "--budget-file", str(budget), target]) == 1
    assert "over" in capsys.readouterr().err


def test_cli_cache_dir_round_trip(tmp_path, capsys):
    cache = tmp_path / "vihot-cache"
    target = str(FIXTURES / "dfpkg")
    assert main(["lint", "--dataflow", "--cache-dir", str(cache), target]) == 1
    capsys.readouterr()
    assert list(cache.glob("summaries-v*.json"))
    # Second run consumes the cache and reports identically.
    assert main(["lint", "--dataflow", "--cache-dir", str(cache), target]) == 1
    assert "VH304" in capsys.readouterr().out


def test_mypy_config_present_in_pyproject():
    """The strict-typing half of the CI analysis job is configured even
    though mypy itself only runs in CI (it is not a runtime dependency)."""
    from pathlib import Path

    try:
        import tomllib
    except ModuleNotFoundError:  # py < 3.11
        pytest.skip("tomllib unavailable")
    root = Path(__file__).resolve().parents[2]
    config = tomllib.loads((root / "pyproject.toml").read_text())
    mypy = config["tool"]["mypy"]
    assert mypy["packages"] == ["repro"]
    strict = config["tool"]["mypy"]["overrides"][0]
    assert {"repro.core.*", "repro.geometry.*", "repro.sensors.*"} <= set(strict["module"])
    assert strict["disallow_untyped_defs"] is True


def test_shipped_tree_is_shapes_clean():
    """The --shapes acceptance gate: zero unsuppressed VH5xx findings on
    the annotated tree (and zero suppressions are in play: no allowlist
    entry names a VH5xx rule)."""
    findings = run_analysis(shapes=True)
    assert findings == [], "\n".join(f.format() for f in findings)
    assert not any(
        entry.rule.startswith("VH5") for entry in DEFAULT_ALLOWLIST.entries
    )


def test_cli_lint_shapes_clean_tree_exits_zero(capsys):
    assert main(["lint", "--shapes"]) == 0
    assert "vihot lint: clean" in capsys.readouterr().out


def test_cli_lint_shapes_fixture_dir_reports_vh5xx(capsys):
    rc = main(["lint", "--shapes", "--format", "json", str(FIXTURES)])
    assert rc == 1
    payload = json.loads(capsys.readouterr().out)
    rules = {f["rule"] for f in payload}
    assert rules >= {"VH501", "VH502", "VH503", "VH504"}
    vh5 = [f for f in payload if f["rule"].startswith("VH5")]
    assert all(f["trace"] for f in vh5), "VH5xx findings must carry traces"


def test_cli_list_rules_with_shapes_includes_vh5xx(capsys):
    assert main(["lint", "--list-rules", "--shapes"]) == 0
    out = capsys.readouterr().out
    for rule_id in ("VH501", "VH502", "VH503", "VH504"):
        assert rule_id in out


def test_cli_explain_known_rule(capsys):
    assert main(["lint", "--explain", "VH502"]) == 0
    out = capsys.readouterr().out
    assert "VH502" in out
    assert "batch-axis-mixup" in out
    assert "permutation" in out
    # The example snippet is printed indented.
    assert "    " in out


def test_cli_explain_works_for_every_registered_rule(capsys):
    from repro.analysis import concurrency_rules, shape_rules
    from repro.analysis.config import dataflow_rules as df

    for rule in [*default_rules(), *df(), *shape_rules(), *concurrency_rules()]:
        assert main(["lint", "--explain", rule.id]) == 0, rule.id
        assert rule.id in capsys.readouterr().out


def test_cli_explain_unknown_rule_exits_two(capsys):
    assert main(["lint", "--explain", "VH999"]) == 2
    captured = capsys.readouterr()
    assert "unknown rule" in captured.err
    assert "VH999" in captured.err
    assert "--concurrency" in captured.err


def test_shipped_tree_is_concurrency_clean():
    """The --concurrency acceptance gate: zero unsuppressed VH6xx
    findings on the tree, with zero suppressions in play (no allowlist
    entry names a VH6xx rule — the audit fixed code, not the lint)."""
    findings = run_analysis(concurrency=True)
    assert findings == [], "\n".join(f.format() for f in findings)
    assert not any(
        entry.rule.startswith("VH6") for entry in DEFAULT_ALLOWLIST.entries
    )


def test_shipped_tree_has_no_vh6xx_noqa_markers():
    """Zero suppressions means zero: no inline noqa for any VH6xx rule
    anywhere in the package source."""
    import re
    from pathlib import Path

    src = Path(__file__).resolve().parents[2] / "src" / "repro"
    offenders = [
        str(path)
        for path in src.rglob("*.py")
        if re.search(r"noqa\[VH6\d\d\]", path.read_text(encoding="utf-8"))
    ]
    assert offenders == []


def test_cli_lint_concurrency_clean_tree_exits_zero(capsys):
    assert main(["lint", "--concurrency"]) == 0
    assert "vihot lint: clean" in capsys.readouterr().out


def test_cli_lint_concurrency_fixture_dir_reports_vh6xx(capsys):
    rc = main(["lint", "--concurrency", "--format", "json", str(FIXTURES)])
    assert rc == 1
    payload = json.loads(capsys.readouterr().out)
    rules = {f["rule"] for f in payload}
    assert rules >= {"VH601", "VH602", "VH603", "VH604", "VH605"}
    vh6 = [f for f in payload if f["rule"].startswith("VH6")]
    assert all(f["trace"] for f in vh6), "VH6xx findings must carry traces"


def test_cli_list_rules_with_concurrency_includes_vh6xx(capsys):
    assert main(["lint", "--list-rules", "--concurrency"]) == 0
    out = capsys.readouterr().out
    for rule_id in ("VH601", "VH602", "VH603", "VH604", "VH605"):
        assert rule_id in out
    capsys.readouterr()
    # ... and without the flag they stay opt-in.
    assert main(["lint", "--list-rules"]) == 0
    assert "VH601" not in capsys.readouterr().out


def test_cli_explain_vh6xx_rules(capsys):
    assert main(["lint", "--explain", "VH602"]) == 0
    out = capsys.readouterr().out
    assert "shm-lifecycle-leak" in out
    assert "kill_worker" in out or "failover" in out


def test_concurrency_pass_caches_under_epoch_three(tmp_path):
    """The VH6xx era bumps RULESET_EPOCH to 3: summaries written by this
    tree are keyed -e3-, so every VH5xx-era cache file is orphaned."""
    from repro.analysis.callgraph import RULESET_EPOCH, build_project

    assert RULESET_EPOCH == 3
    cache = tmp_path / "cache"
    build_project([FIXTURES / "dfpkg"], cache_dir=cache)
    names = [p.name for p in cache.glob("summaries-*.json")]
    assert names and all("-e3-" in n for n in names)
