"""Baseline tracker tests."""

import numpy as np
import pytest

from repro.baselines.camera_only import CameraOnlyTracker
from repro.baselines.nearest import NearestFingerprintTracker
from repro.baselines.pointmap import PointMappingTracker
from repro.core import ViHOTConfig
from repro.core.profile import CsiProfile
from repro.sensors.camera import CameraConfig


def test_pointmap_tracks_roughly(small_profile, runtime_stream, small_scenario):
    stream, scene = runtime_stream
    tracker = PointMappingTracker(small_profile, ViHOTConfig())
    result = tracker.process(stream, estimate_stride_s=0.1)
    assert len(result) > 30
    truth = scene.driver_yaw(result.target_times)
    err = np.abs(np.rad2deg(result.orientations - truth))
    active = result.target_times > 2.5
    # Instantaneous inversion works most of the time in this channel...
    assert np.median(err[active]) < 25.0


def test_pointmap_outputs_profile_orientations(small_profile, runtime_stream):
    stream, _scene = runtime_stream
    tracker = PointMappingTracker(small_profile)
    result = tracker.process(stream, estimate_stride_s=0.25)
    all_orients = np.concatenate([p.orientations for p in small_profile])
    for est in result.orientations:
        assert np.min(np.abs(all_orients - est)) < 1e-9


def test_nearest_fingerprint_tracks(small_profile, runtime_stream, small_scenario):
    stream, scene = runtime_stream
    tracker = NearestFingerprintTracker(small_profile, ViHOTConfig())
    result = tracker.process(stream, estimate_stride_s=0.1)
    truth = scene.driver_yaw(result.target_times)
    err = np.abs(np.rad2deg(result.orientations - truth))
    active = result.target_times > 2.5
    assert np.median(err[active]) < 25.0


def test_baselines_reject_empty_profile():
    with pytest.raises(ValueError):
        PointMappingTracker(CsiProfile())
    with pytest.raises(ValueError):
        NearestFingerprintTracker(CsiProfile())


def test_baselines_reject_bad_stride(small_profile, runtime_stream):
    stream, _scene = runtime_stream
    with pytest.raises(ValueError):
        PointMappingTracker(small_profile).process(stream, estimate_stride_s=0)
    with pytest.raises(ValueError):
        NearestFingerprintTracker(small_profile).process(stream, estimate_stride_s=0)


def test_camera_only_rate_limited(runtime_stream):
    _stream, scene = runtime_stream
    tracker = CameraOnlyTracker(scene, rng=np.random.default_rng(0))
    result = tracker.process(0.0, 5.0)
    # ~30 fps, minus any drops.
    assert 100 < len(result) <= 155
    assert set(result.modes) == {"camera"}


def test_camera_only_sampling_rate(runtime_stream):
    _stream, scene = runtime_stream
    tracker = CameraOnlyTracker(scene, rng=np.random.default_rng(1))
    rate = tracker.sampling_rate_hz(0.0, 5.0)
    assert rate == pytest.approx(30.0, rel=0.15)


def test_camera_only_night_degrades(runtime_stream):
    _stream, scene = runtime_stream
    day = CameraOnlyTracker(scene, CameraConfig(light_level=1.0), rng=np.random.default_rng(2))
    night = CameraOnlyTracker(scene, CameraConfig(light_level=0.2), rng=np.random.default_rng(2))
    day_result = day.process(0.0, 6.0)
    night_result = night.process(0.0, 6.0)
    day_truth = scene.driver_yaw(day_result.target_times)
    night_truth = scene.driver_yaw(night_result.target_times)
    day_err = np.median(np.abs(day_result.orientations - day_truth))
    night_err = np.median(np.abs(night_result.orientations - night_truth))
    assert night_err > day_err
