"""Driver behaviour tests: trajectories, head positions, driver profiles."""

import numpy as np
import pytest

from repro.cabin.driver import (
    DriverProfile,
    HeadPositionModel,
    constant_trajectory,
    glance_trajectory,
    scan_trajectory,
)


def test_constant_trajectory():
    t = constant_trajectory(5.0, yaw_rad=0.3)
    assert t.value(2.0) == pytest.approx(0.3)


def test_scan_trajectory_covers_both_sides():
    t = scan_trajectory(10.0, amplitude_rad=np.deg2rad(80), speed_rad_s=np.deg2rad(80))
    times = np.linspace(0, 10, 500)
    yaw = t.value(times)
    assert yaw.min() < -np.deg2rad(60)
    assert yaw.max() > np.deg2rad(60)


def test_scan_trajectory_speed_respected():
    speed = np.deg2rad(70)
    t = scan_trajectory(10.0, speed_rad_s=speed, amplitude_rad=np.deg2rad(80))
    times = np.linspace(0.2, 9.8, 2000)
    rates = np.abs(t.rate(times))
    assert rates.max() <= speed * 1.05


def test_scan_trajectory_ends_at_duration():
    t = scan_trajectory(7.0, t_start=1.0)
    assert t.end == pytest.approx(8.0)


def test_scan_trajectory_jitter_differs_per_rng():
    a = scan_trajectory(8.0, rng=np.random.default_rng(1))
    b = scan_trajectory(8.0, rng=np.random.default_rng(2))
    times = np.linspace(0, 8, 100)
    assert not np.allclose(a.value(times), b.value(times))


def test_scan_validation():
    with pytest.raises(ValueError):
        scan_trajectory(0.0)
    with pytest.raises(ValueError):
        scan_trajectory(5.0, amplitude_rad=-1.0)


def test_glance_trajectory_returns_to_front():
    t = glance_trajectory(30.0, np.random.default_rng(3))
    times = np.linspace(0, 30, 3000)
    yaw = np.rad2deg(t.value(times))
    # Most of the time the driver faces the road.
    assert np.mean(np.abs(yaw) < 5.0) > 0.5
    # But glances do happen.
    assert np.abs(yaw).max() > 20.0


def test_glance_speed_bounded():
    speed = np.deg2rad(110)
    t = glance_trajectory(30.0, np.random.default_rng(4), speed_rad_s=speed)
    times = np.linspace(0.5, 29.5, 5000)
    assert np.abs(t.rate(times)).max() <= speed * 1.05


def test_position_model_deterministic():
    m = HeadPositionModel(seed=5)
    times = np.linspace(0, 10, 50)
    np.testing.assert_allclose(m.centers(times), m.centers(times))


def test_position_model_lean_shifts_x():
    base = HeadPositionModel(sway_std_m=0.0)
    leaned = base.with_lean(0.02)
    times = np.array([1.0])
    delta = leaned.centers(times)[0] - base.centers(times)[0]
    np.testing.assert_allclose(delta, [0.02, 0.0, 0.0], atol=1e-12)


def test_position_model_sway_is_small_and_slow():
    m = HeadPositionModel(seed=6)
    times = np.linspace(0, 60, 600)
    centers = m.centers(times)
    sway = centers - centers.mean(axis=0)
    assert np.abs(sway).max() < 0.01  # < 1 cm
    # Slow: adjacent samples (0.1 s apart) nearly identical.
    assert np.abs(np.diff(centers, axis=0)).max() < 0.002


def test_position_model_horizon_enforced():
    m = HeadPositionModel(horizon_s=10.0)
    with pytest.raises(ValueError):
        m.centers(np.array([11.0]))


def test_driver_profile_head_models_differ():
    a = DriverProfile(name="A").head_model()
    b = DriverProfile(name="B", face_scale=1.2, head_radius_m=0.1).head_model()
    assert a.radius != b.radius
    assert a.depth_coeffs != b.depth_coeffs


def test_driver_profile_position_height():
    tall = DriverProfile(name="T", head_height_m=0.06).position_model()
    short = DriverProfile(name="S", head_height_m=-0.03).position_model()
    t = np.array([0.0])
    assert tall.centers(t)[0][2] > short.centers(t)[0][2]


def test_driver_profile_validation():
    with pytest.raises(ValueError):
        DriverProfile(face_scale=0.0)
    with pytest.raises(ValueError):
        DriverProfile(turn_speed_rad_s=-1.0)
