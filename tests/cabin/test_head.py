"""Head model tests: facing conventions, depth profile, creeping path."""

import numpy as np
import pytest

from repro.cabin.head import HeadModel, facing_direction, lateral_direction
from repro.geometry.vec import vec3


def test_facing_convention():
    # theta = 0 faces the car front (-x); +90 deg faces the passenger (+y).
    np.testing.assert_allclose(facing_direction(0.0), [-1, 0, 0], atol=1e-12)
    np.testing.assert_allclose(facing_direction(np.pi / 2), [0, 1, 0], atol=1e-12)


def test_lateral_orthogonal_to_facing():
    for yaw in np.linspace(-np.pi, np.pi, 9):
        facing = facing_direction(yaw)
        lateral = lateral_direction(yaw)
        assert abs(np.dot(facing, lateral)) < 1e-12


def test_depth_profile_nose_forward():
    head = HeadModel()
    # Facing the phone presents the deepest profile (nose).
    assert head.depth_profile(0.0) > head.depth_profile(np.pi / 2)
    assert head.depth_profile(0.0) > head.depth_profile(np.pi)


def test_depth_profile_asymmetric():
    head = HeadModel()
    assert head.depth_profile(0.5) != pytest.approx(head.depth_profile(-0.5))


def test_creeping_excess_monotone_dominant():
    """The sin term dominates: excess is monotone over most of the range,

    giving the mostly-injective phase-orientation curve of Fig. 1/3."""
    head = HeadModel()
    yaws = np.linspace(-np.deg2rad(80), np.deg2rad(80), 50)
    excess = head.creeping_excess_path(yaws)
    diffs = np.diff(excess)
    assert np.mean(diffs > 0) > 0.8


def test_creeping_excess_range_couple_of_radians():
    # At 2.4 GHz the excess swing should translate to ~1.5-3 rad of phase.
    head = HeadModel()
    yaws = np.linspace(-np.deg2rad(85), np.deg2rad(85), 100)
    swing = np.ptp(head.creeping_excess_path(yaws))
    phase_swing = 2 * np.pi * swing / 0.123
    assert 1.0 < phase_swing < 4.0


def test_scatterer_tracks_move_with_yaw():
    head = HeadModel()
    centers = np.tile(vec3(0.55, 0.0, 0.15), (3, 1))
    yaws = np.array([0.0, 0.5, 1.0])
    tracks = head.scatterer_tracks(centers, yaws, toward=vec3(0, 0, 0))
    main = tracks[0]
    assert main.name.endswith("head-front")
    assert not np.allclose(main.positions[0], main.positions[1])


def test_scatterer_stays_near_head():
    head = HeadModel()
    centers = np.tile(vec3(0.55, 0.0, 0.15), (20, 1))
    yaws = np.linspace(-1.5, 1.5, 20)
    tracks = head.scatterer_tracks(centers, yaws, toward=vec3(0, 0, 0))
    for track in tracks:
        dist = np.linalg.norm(track.positions - centers, axis=1)
        assert np.all(dist < 2 * head.radius)


def test_back_scatterer_optional():
    head = HeadModel(back_rcs_m2=0.0)
    centers = np.zeros((2, 3)) + [0.5, 0, 0]
    tracks = head.scatterer_tracks(centers, np.zeros(2), toward=vec3(0, 0, 0))
    assert len(tracks) == 1


def test_blocker_carries_aspect_path():
    head = HeadModel()
    centers = np.tile(vec3(0.55, 0.0, 0.15), (4, 1))
    yaws = np.linspace(0, 1.0, 4)
    blocker = head.blocker_track(centers, yaws)
    assert blocker.extra_path_m is not None
    assert np.ptp(blocker.extra_path_m) > 0
    assert blocker.transmission == head.transmission
    # Without yaw: geometric blocker only.
    assert head.blocker_track(centers).extra_path_m is None


def test_validation():
    with pytest.raises(ValueError):
        HeadModel(radius=-0.1)
    with pytest.raises(ValueError):
        HeadModel(rcs_m2=0.0)
    with pytest.raises(ValueError):
        HeadModel(transmission=1.5)
    with pytest.raises(ValueError):
        HeadModel(depth_coeffs=(0.01, 0.01))


def test_shape_validation():
    head = HeadModel()
    with pytest.raises(ValueError):
        head.scatterer_tracks(np.zeros((3, 2)), np.zeros(3), toward=vec3(0, 0, 0))
    with pytest.raises(ValueError):
        head.scatterer_tracks(np.zeros((3, 3)), np.zeros(4), toward=vec3(0, 0, 0))
