"""Extra head-model tests: ripple, RCS aspect, driver variants."""

import numpy as np
import pytest

from repro.cabin.head import HeadModel
from repro.geometry.vec import vec3


def test_ripple_creates_local_non_injectivity():
    """The ripple must create repeated values locally (Fig. 3's folds)

    without destroying the global monotone trend."""
    smooth = HeadModel(ripple_amp_m=0.0)
    rippled = HeadModel()
    yaws = np.linspace(-np.deg2rad(80), np.deg2rad(80), 400)
    d_smooth = np.diff(smooth.creeping_excess_path(yaws))
    d_rippled = np.diff(rippled.creeping_excess_path(yaws))
    # Ripple adds sign changes (non-monotone spots)...
    assert np.sum(np.diff(np.sign(d_rippled)) != 0) >= np.sum(
        np.diff(np.sign(d_smooth)) != 0
    )
    # ...but the majority trend stays increasing.
    assert np.mean(d_rippled > 0) > 0.6


def test_ripple_validation():
    with pytest.raises(ValueError):
        HeadModel(ripple_amp_m=-0.001)


def test_rcs_modulates_with_aspect():
    head = HeadModel()
    centers = np.tile(vec3(0.55, 0, 0.15), (2, 1))
    tracks = head.scatterer_tracks(
        centers, np.array([0.0, np.pi / 2]), toward=vec3(0, 0, 0)
    )
    front = tracks[0]
    # Facing the phone reflects more strongly than showing an ear.
    assert front.rcs_m2[0] > front.rcs_m2[1]


def test_depth_profile_periodicity():
    head = HeadModel()
    yaws = np.linspace(-np.pi, np.pi, 50)
    np.testing.assert_allclose(
        head.depth_profile(yaws), head.depth_profile(yaws + 2 * np.pi), atol=1e-12
    )


def test_transmission_range_documented():
    head = HeadModel()
    assert 0.3 < head.transmission < 1.0  # creeping-dominated, not opaque
