"""CabinScene composition plus passenger/micromotion/vibration/geometry."""

import numpy as np
import pytest

from repro.cabin.geometry import CabinLayout, RX_LAYOUT_NAMES, rx_layout
from repro.cabin.micromotion import (
    BreathingMotion,
    EyeBlinkMotion,
    MusicVibrationMotion,
)
from repro.cabin.passenger import PassengerModel, passenger_glance_trajectory
from repro.cabin.scene import CabinScene
from repro.cabin.vibration import VibrationModel


def test_rx_layouts_all_resolve():
    for name in RX_LAYOUT_NAMES:
        antennas = rx_layout(name)
        assert len(antennas) == 2
    assert rx_layout(1)[0].position[0] == rx_layout("behind-driver")[0].position[0]


def test_rx_layout_unknown():
    with pytest.raises(ValueError):
        rx_layout("trunk")
    with pytest.raises(ValueError):
        rx_layout(0)


def test_layout1_blocks_one_antenna_only():
    """The defining property of the paper's best placement (Sec. 5.2.2)."""
    scene = CabinScene()
    times = np.array([0.0])
    blockers = scene.blocker_tracks(times)
    tx = scene.tx_antenna.position
    blocked = []
    for rx in scene.rx_antennas:
        hit = any(b.blocks(tx[None], rx.position[None])[0] for b in blockers)
        blocked.append(hit)
    assert blocked == [True, False]


def test_static_clutter_deterministic():
    layout = CabinLayout()
    a = layout.static_clutter()
    b = layout.static_clutter()
    for (pa, ra), (pb, rb) in zip(a, b):
        np.testing.assert_allclose(pa, pb)
        assert ra == rb


def test_scene_scatterers_cover_everything():
    scene = CabinScene(passenger=PassengerModel())
    times = np.linspace(0, 1, 5)
    names = [t.name for t in scene.scatterer_tracks(times)]
    assert any("head-front" in n for n in names)
    assert any("steering-hand" in n for n in names)
    assert any(n.startswith("passenger") for n in names)
    assert any(n == "breathing-chest" for n in names)
    assert any(n == "static-clutter" for n in names)


def test_scene_track_lengths_consistent():
    scene = CabinScene()
    times = np.linspace(0, 2, 7)
    for track in scene.scatterer_tracks(times):
        assert len(track) == 7
    assert scene.rx_offsets(times).shape == (2, 7, 3)


def test_scene_ground_truth_accessors():
    scene = CabinScene()
    t = np.linspace(0, 1, 5)
    assert scene.driver_yaw(t).shape == (5,)
    assert scene.car_yaw_rate(t).shape == (5,)
    assert scene.steering_angle(t).shape == (5,)
    assert scene.driver_head_centers(t).shape == (5, 3)


def test_passenger_tracks_and_blocker():
    p = PassengerModel(
        yaw=passenger_glance_trajectory(10.0, np.random.default_rng(0))
    )
    times = np.linspace(0, 5, 11)
    tracks = p.scatterer_tracks(times)
    assert all(len(t) == 11 for t in tracks)
    blockers = p.blocker_tracks(times)
    assert len(blockers) == 1
    # Passenger sits on the +y side of the cabin.
    assert tracks[0].positions[:, 1].mean() > 0.4


def test_micromotion_displacements_small():
    times = np.linspace(0, 10, 500)
    for motion, bound in (
        (BreathingMotion(), 0.003),
        (EyeBlinkMotion(), 0.001),
        (MusicVibrationMotion(), 0.001),
    ):
        track = motion.tracks(times)[0]
        spread = np.ptp(track.positions, axis=0).max()
        assert 0.0 < spread <= 2 * bound


def test_micromotion_deterministic():
    times = np.linspace(0, 2, 50)
    a = EyeBlinkMotion(seed=3).tracks(times)[0].positions
    b = EyeBlinkMotion(seed=3).tracks(times)[0].positions
    np.testing.assert_allclose(a, b)


def test_vibration_rms_and_bandwidth():
    model = VibrationModel(amplitude_m=0.003, seed=9)
    times = np.linspace(0, 30, 3000)
    offsets = model.offsets(times, 2)
    assert offsets.shape == (2, 3000, 3)
    rms = np.std(offsets[0], axis=0)
    np.testing.assert_allclose(rms, 0.003, rtol=0.25)
    # Independent per antenna.
    assert not np.allclose(offsets[0], offsets[1])


def test_vibration_zero_amplitude_zero_offsets():
    model = VibrationModel(amplitude_m=0.0)
    offsets = model.offsets(np.linspace(0, 1, 10), 2)
    np.testing.assert_allclose(offsets, 0.0)


def test_vibration_validation():
    with pytest.raises(ValueError):
        VibrationModel(amplitude_m=-0.001)
    with pytest.raises(ValueError):
        VibrationModel(bandwidth_hz=0.0)
