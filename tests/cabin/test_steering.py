"""Steering model and trajectory tests."""

import numpy as np
import pytest

from repro.cabin.steering import (
    SteeringModel,
    lane_keeping_trajectory,
    turning_trajectory,
)


def test_rim_point_on_circle():
    model = SteeringModel()
    for phi in np.linspace(0, 2 * np.pi, 9):
        p = model.rim_point(phi)
        assert np.linalg.norm(p - model.center) == pytest.approx(model.radius)


def test_rim_point_top_at_zero():
    model = SteeringModel()
    top = model.rim_point(0.0)
    assert top[2] == pytest.approx(model.center[2] + model.radius)


def test_hands_rotate_with_wheel():
    from repro.cabin.trajectory import PiecewiseTrajectory

    model = SteeringModel()
    times = np.array([0.0, 1.0])
    wheel = PiecewiseTrajectory(times, np.array([0.0, np.pi / 2]), smoothing_s=0.0)
    tracks = model.scatterer_tracks(times, wheel)
    assert len(tracks) == 2
    for track in tracks:
        assert not np.allclose(track.positions[0], track.positions[1])


def test_hands_static_without_trajectory():
    model = SteeringModel()
    times = np.linspace(0, 2, 5)
    tracks = model.scatterer_tracks(times, None)
    for track in tracks:
        np.testing.assert_allclose(track.positions, np.tile(track.positions[0], (5, 1)))


def test_lane_keeping_small_angles():
    traj = lane_keeping_trajectory(30.0, np.random.default_rng(0))
    times = np.linspace(0, 30, 1000)
    assert np.abs(np.rad2deg(traj.value(times))).max() < 15.0


def test_turning_trajectory_has_large_turns():
    traj = turning_trajectory(60.0, np.random.default_rng(1), turns_per_minute=4.0)
    times = np.linspace(0, 60, 5000)
    angles = np.abs(np.rad2deg(traj.value(times)))
    assert angles.max() > 90.0
    # And returns to straight between turns.
    assert np.mean(angles < 5.0) > 0.3


def test_trajectory_validation():
    with pytest.raises(ValueError):
        lane_keeping_trajectory(0.0, np.random.default_rng(0))
    with pytest.raises(ValueError):
        turning_trajectory(-1.0, np.random.default_rng(0))


def test_model_validation():
    with pytest.raises(ValueError):
        SteeringModel(radius=0.0)
    with pytest.raises(ValueError):
        SteeringModel(hand_rcs_m2=-1.0)
