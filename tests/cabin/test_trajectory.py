"""Piecewise trajectory tests."""

import numpy as np
import pytest

from repro.cabin.trajectory import PiecewiseTrajectory, TrajectoryBuilder


def test_constant():
    t = PiecewiseTrajectory.constant(2.0, 0.0, 5.0)
    assert t.value(3.0) == pytest.approx(2.0)
    assert t.rate(3.0) == pytest.approx(0.0)


def test_linear_interp():
    t = PiecewiseTrajectory(np.array([0.0, 1.0]), np.array([0.0, 10.0]), smoothing_s=0.0)
    assert t.value(0.5) == pytest.approx(5.0)
    assert t.rate(0.5) == pytest.approx(10.0)


def test_validation():
    with pytest.raises(ValueError):
        PiecewiseTrajectory(np.array([1.0, 0.0]), np.array([0.0, 1.0]))
    with pytest.raises(ValueError):
        PiecewiseTrajectory(np.array([0.0]), np.array([0.0, 1.0]))
    with pytest.raises(ValueError):
        PiecewiseTrajectory(np.array([0.0, 1.0]), np.array([0.0, 1.0]), smoothing_s=-1.0)
    with pytest.raises(ValueError):
        PiecewiseTrajectory.constant(0.0, 1.0, 1.0)


def test_smoothing_rounds_corner():
    # A sharp corner at t=1: smoothed value dips below the corner peak.
    t = PiecewiseTrajectory(
        np.array([0.0, 1.0, 2.0]), np.array([0.0, 1.0, 0.0]), smoothing_s=0.4
    )
    assert t.value(1.0) < 1.0
    # Far from the corner the trajectory is untouched.
    assert t.value(0.1) == pytest.approx(0.1, abs=0.02)


def test_smoothing_preserves_mean_slope():
    t = PiecewiseTrajectory(
        np.array([0.0, 2.0]), np.array([0.0, 4.0]), smoothing_s=0.2
    )
    assert t.value(1.0) == pytest.approx(2.0, abs=1e-9)


def test_rate_sign():
    t = PiecewiseTrajectory(
        np.array([0.0, 1.0, 2.0]), np.array([0.0, 1.0, 0.0]), smoothing_s=0.0
    )
    assert t.rate(0.5) > 0
    assert t.rate(1.5) < 0


def test_shift_and_scale():
    t = PiecewiseTrajectory(np.array([0.0, 1.0]), np.array([0.0, 2.0]), smoothing_s=0.0)
    assert t.shift(1.0).value(1.5) == pytest.approx(1.0)
    assert t.scaled(3.0).value(1.0) == pytest.approx(6.0)


def test_builder_hold_and_ramp():
    b = TrajectoryBuilder(0.0, 0.0)
    b.hold(1.0).ramp_to(2.0, rate=2.0).hold(0.5)
    t = b.build(smoothing_s=0.0)
    assert t.end == pytest.approx(2.5)
    assert t.value(0.5) == pytest.approx(0.0)
    assert t.value(1.5) == pytest.approx(1.0)
    assert t.value(2.3) == pytest.approx(2.0)


def test_builder_ramp_noop_when_at_target():
    b = TrajectoryBuilder(0.0, 1.0)
    b.ramp_to(1.0, rate=5.0)
    assert b.time == 0.0


def test_builder_validation():
    b = TrajectoryBuilder()
    with pytest.raises(ValueError):
        b.hold(-1.0)
    with pytest.raises(ValueError):
        b.ramp_to(1.0, rate=0.0)


def test_scalar_and_array_evaluation_agree():
    t = PiecewiseTrajectory(np.array([0.0, 1.0, 3.0]), np.array([0.0, 2.0, -1.0]))
    times = np.array([0.2, 1.5, 2.9])
    batch = t.value(times)
    singles = [t.value(float(x)) for x in times]
    np.testing.assert_allclose(batch, singles)
