"""Property-based trajectory tests."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cabin.trajectory import PiecewiseTrajectory, TrajectoryBuilder


@st.composite
def random_trajectory(draw):
    n = draw(st.integers(min_value=2, max_value=12))
    gaps = draw(
        st.lists(
            st.floats(min_value=0.05, max_value=2.0, allow_nan=False),
            min_size=n, max_size=n,
        )
    )
    values = draw(
        st.lists(
            st.floats(min_value=-3.0, max_value=3.0, allow_nan=False),
            min_size=n, max_size=n,
        )
    )
    times = np.cumsum(gaps)
    return PiecewiseTrajectory(times, np.array(values), smoothing_s=0.08)


@given(random_trajectory())
@settings(max_examples=40, deadline=None)
def test_value_bounded_by_knots(traj):
    query = np.linspace(traj.start, traj.end, 50)
    values = traj.value(query)
    assert np.all(values >= traj.knot_values.min() - 1e-9)
    assert np.all(values <= traj.knot_values.max() + 1e-9)


@given(random_trajectory())
@settings(max_examples=40, deadline=None)
def test_clamped_outside_span(traj):
    before = traj.value(traj.start - 5.0)
    after = traj.value(traj.end + 5.0)
    assert before == traj.value(traj.start - 1.0)
    assert after == traj.value(traj.end + 1.0)


@given(random_trajectory(), st.floats(min_value=-5, max_value=5, allow_nan=False))
@settings(max_examples=40, deadline=None)
def test_shift_equivariant(traj, dt):
    shifted = traj.shift(dt)
    query = np.linspace(traj.start, traj.end, 20)
    np.testing.assert_allclose(shifted.value(query + dt), traj.value(query), atol=1e-9)


@given(random_trajectory(), st.floats(min_value=-3, max_value=3, allow_nan=False))
@settings(max_examples=40, deadline=None)
def test_scale_linear(traj, factor):
    scaled = traj.scaled(factor)
    query = np.linspace(traj.start, traj.end, 20)
    np.testing.assert_allclose(
        scaled.value(query), factor * traj.value(query), atol=1e-9
    )


@given(
    st.lists(
        st.tuples(
            st.floats(min_value=0.05, max_value=2.0, allow_nan=False),
            st.floats(min_value=-2.0, max_value=2.0, allow_nan=False),
        ),
        min_size=1,
        max_size=8,
    )
)
@settings(max_examples=40, deadline=None)
def test_builder_monotone_time(segments):
    builder = TrajectoryBuilder(0.0, 0.0)
    for hold, target in segments:
        builder.hold(hold)
        builder.ramp_to(target, rate=1.0)
    traj = builder.build()
    assert np.all(np.diff(traj.knot_times) > 0)
    assert traj.end >= sum(h for h, _t in segments) - 1e-9
