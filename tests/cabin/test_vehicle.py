"""Vehicle kinematics tests."""

import numpy as np
import pytest

from repro.cabin.trajectory import PiecewiseTrajectory
from repro.cabin.vehicle import VehicleKinematics


def wheel(angle_rad, duration=2.0):
    return PiecewiseTrajectory.constant(angle_rad, 0.0, duration)


def test_straight_wheel_zero_yaw_rate():
    v = VehicleKinematics()
    rates = v.yaw_rate(np.linspace(0, 1, 5), wheel(0.0))
    np.testing.assert_allclose(rates, 0.0)


def test_no_trajectory_zero_yaw_rate():
    v = VehicleKinematics()
    np.testing.assert_allclose(v.yaw_rate(np.zeros(3), None), 0.0)


def test_parked_car_zero_yaw_rate():
    v = VehicleKinematics(speed_mps=0.0)
    rates = v.yaw_rate(np.zeros(3), wheel(np.pi / 2))
    np.testing.assert_allclose(rates, 0.0)


def test_bicycle_model_magnitude():
    # 6 m/s, 180 deg wheel / ratio 15 = 12 deg road angle.
    v = VehicleKinematics(speed_mps=6.0, wheelbase_m=2.78, steering_ratio=15.0)
    rate = v.yaw_rate(np.array([0.0]), wheel(np.pi))[0]
    expected = 6.0 / 2.78 * np.tan(np.pi / 15.0)
    assert rate == pytest.approx(expected)


def test_yaw_rate_sign_follows_wheel():
    v = VehicleKinematics()
    left = v.yaw_rate(np.array([0.0]), wheel(-0.5))[0]
    right = v.yaw_rate(np.array([0.0]), wheel(0.5))[0]
    assert left < 0 < right


def test_lateral_accel_is_v_times_yaw_rate():
    v = VehicleKinematics(speed_mps=5.0)
    t = np.array([0.0])
    assert v.lateral_accel(t, wheel(0.3))[0] == pytest.approx(
        5.0 * v.yaw_rate(t, wheel(0.3))[0]
    )


def test_validation():
    with pytest.raises(ValueError):
        VehicleKinematics(speed_mps=-1.0)
    with pytest.raises(ValueError):
        VehicleKinematics(wheelbase_m=0.0)
