"""Shared fixtures.

The expensive world-building (profiling pass, run-time capture) happens
once per test session at reduced scale; tests that need different knobs
build their own scenarios.
"""

import numpy as np
import pytest

from repro.core import ViHOTConfig
from repro.experiments.scenarios import Scenario, ScenarioConfig


SMALL = ScenarioConfig(
    seed=7,
    num_positions=4,
    profile_seconds=5.0,
    runtime_duration_s=8.0,
)


@pytest.fixture(scope="session")
def small_scenario():
    return Scenario(SMALL)


@pytest.fixture(scope="session")
def small_profile(small_scenario):
    return small_scenario.build_profile()


@pytest.fixture(scope="session")
def runtime_stream(small_scenario):
    stream, scene = small_scenario.runtime_capture(0)
    return stream, scene


@pytest.fixture()
def rng():
    return np.random.default_rng(1234)


@pytest.fixture()
def fast_config():
    """Tracker config tuned for test speed (coarser search)."""
    return ViHOTConfig(profile_stride=6, num_length_candidates=3)
