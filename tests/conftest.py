"""Shared fixtures.

The expensive world-building (profiling pass, run-time capture) happens
once per test session at reduced scale; tests that need different knobs
build their own scenarios.
"""

import numpy as np
import pytest

from repro.core import ViHOTConfig
from repro.experiments.scenarios import Scenario, ScenarioConfig


def pytest_addoption(parser):
    parser.addoption(
        "--runtime-contracts",
        action="store_true",
        default=False,
        help=(
            "wrap the annotated kernel boundaries "
            "(repro.analysis.runtime_contracts) and fail any test whose "
            "calls diverge from the declared :shape/:dtype contracts"
        ),
    )


def pytest_configure(config):
    if config.getoption("--runtime-contracts"):
        from repro.analysis import runtime_contracts

        runtime_contracts.clear_records()
        runtime_contracts.activate()


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    if not config.getoption("--runtime-contracts"):
        return
    from repro.analysis import runtime_contracts

    counts = runtime_contracts.summary()
    terminalreporter.write_sep("-", "runtime shape/dtype contracts")
    if not counts:
        terminalreporter.write_line(
            "no annotated boundary was crossed (suspicious: check "
            "CONTRACT_BOUNDARIES)"
        )
    for boundary in sorted(counts):
        terminalreporter.write_line(f"{boundary}: {counts[boundary]} calls ok")


def pytest_unconfigure(config):
    if config.getoption("--runtime-contracts"):
        from repro.analysis import runtime_contracts

        runtime_contracts.deactivate()


SMALL = ScenarioConfig(
    seed=7,
    num_positions=4,
    profile_seconds=5.0,
    runtime_duration_s=8.0,
)


@pytest.fixture(scope="session")
def small_scenario():
    return Scenario(SMALL)


@pytest.fixture(scope="session")
def small_profile(small_scenario):
    return small_scenario.build_profile()


@pytest.fixture(scope="session")
def runtime_stream(small_scenario):
    stream, scene = small_scenario.runtime_capture(0)
    return stream, scene


@pytest.fixture()
def rng():
    return np.random.default_rng(1234)


@pytest.fixture()
def fast_config():
    """Tracker config tuned for test speed (coarser search)."""
    return ViHOTConfig(profile_stride=6, num_length_candidates=3)
