"""Shared fixtures.

The expensive world-building (profiling pass, run-time capture) happens
once per test session at reduced scale; tests that need different knobs
build their own scenarios.
"""

import numpy as np
import pytest

from repro.core import ViHOTConfig
from repro.experiments.scenarios import Scenario, ScenarioConfig


def pytest_addoption(parser):
    parser.addoption(
        "--runtime-contracts",
        action="store_true",
        default=False,
        help=(
            "wrap the annotated kernel boundaries "
            "(repro.analysis.runtime_contracts) and fail any test whose "
            "calls diverge from the declared :shape/:dtype contracts"
        ),
    )
    parser.addoption(
        "--process-contracts",
        action="store_true",
        default=False,
        help=(
            "wrap SharedCsiRing and the worker entrypoint "
            "(repro.analysis.process_contracts) and fail the session if "
            "any acquired shm segment is never released or two workers "
            "share an RNG stream/ring (VH6xx's runtime half)"
        ),
    )


def pytest_configure(config):
    if config.getoption("--runtime-contracts"):
        from repro.analysis import runtime_contracts

        runtime_contracts.clear_records()
        runtime_contracts.activate()
    if config.getoption("--process-contracts"):
        from repro.analysis import process_contracts

        process_contracts.clear_records()
        process_contracts.activate()


def pytest_sessionfinish(session, exitstatus):
    if not session.config.getoption("--process-contracts", default=False):
        return
    from repro.analysis import process_contracts

    try:
        process_contracts.assert_balanced()
        process_contracts.assert_worker_divergence()
    except process_contracts.ContractViolation as exc:
        session.config._process_contract_violation = str(exc)
        session.exitstatus = 1


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    if config.getoption("--runtime-contracts"):
        from repro.analysis import runtime_contracts

        counts = runtime_contracts.summary()
        terminalreporter.write_sep("-", "runtime shape/dtype contracts")
        if not counts:
            terminalreporter.write_line(
                "no annotated boundary was crossed (suspicious: check "
                "CONTRACT_BOUNDARIES)"
            )
        for boundary in sorted(counts):
            terminalreporter.write_line(f"{boundary}: {counts[boundary]} calls ok")
    if config.getoption("--process-contracts", default=False):
        from repro.analysis import process_contracts

        stats = process_contracts.summary()
        terminalreporter.write_sep("-", "runtime process-safety contracts")
        violation = getattr(config, "_process_contract_violation", None)
        if violation is not None:
            terminalreporter.write_line(f"VIOLATION: {violation}")
        terminalreporter.write_line(
            f"shm acquires={stats['acquires']} releases={stats['releases']} "
            f"unlinks={stats['unlinks']} workers={stats['workers']} "
            f"unreleased-in-ledger={stats['unreleased']}"
            + ("" if violation is None else " [FAIL]")
        )
        if stats["acquires"] == 0:
            terminalreporter.write_line(
                "no SharedCsiRing was acquired (suspicious: did the "
                "fabric suites run?)"
            )


def pytest_unconfigure(config):
    if config.getoption("--runtime-contracts"):
        from repro.analysis import runtime_contracts

        runtime_contracts.deactivate()
    if config.getoption("--process-contracts", default=False):
        from repro.analysis import process_contracts

        process_contracts.deactivate()


SMALL = ScenarioConfig(
    seed=7,
    num_positions=4,
    profile_seconds=5.0,
    runtime_duration_s=8.0,
)


@pytest.fixture(scope="session")
def small_scenario():
    return Scenario(SMALL)


@pytest.fixture(scope="session")
def small_profile(small_scenario):
    return small_scenario.build_profile()


@pytest.fixture(scope="session")
def runtime_stream(small_scenario):
    stream, scene = small_scenario.runtime_capture(0)
    return stream, scene


@pytest.fixture()
def rng():
    return np.random.default_rng(1234)


@pytest.fixture()
def fast_config():
    """Tracker config tuned for test speed (coarser search)."""
    return ViHOTConfig(profile_stride=6, num_length_candidates=3)
