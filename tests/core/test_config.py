"""ViHOTConfig validation and derived-quantity tests."""

import numpy as np
import pytest

from repro.core.config import ViHOTConfig


def test_defaults_match_paper():
    config = ViHOTConfig()
    assert config.window_s == pytest.approx(0.1)
    assert config.horizon_s == 0.0
    assert config.length_range == (0.5, 2.0)
    assert config.neighbor_positions == 0


def test_window_samples():
    assert ViHOTConfig(window_s=0.1, resample_rate_hz=200.0).window_samples == 20
    # Tiny windows still yield a matchable 2-sample query.
    assert ViHOTConfig(window_s=0.001, resample_rate_hz=200.0).window_samples == 2


def test_candidate_lengths_span_range():
    config = ViHOTConfig(window_s=0.1, resample_rate_hz=200.0, num_length_candidates=5)
    lengths = config.candidate_lengths()
    assert lengths.min() == 10  # 0.5 W
    assert lengths.max() == 40  # 2 W
    assert np.all(np.diff(lengths) > 0)


def test_candidate_lengths_deduplicated():
    config = ViHOTConfig(window_s=0.01, resample_rate_hz=200.0, num_length_candidates=8)
    lengths = config.candidate_lengths()
    assert len(lengths) == len(set(lengths.tolist()))
    assert np.all(lengths >= 2)


@pytest.mark.parametrize(
    "kwargs",
    [
        {"window_s": 0.0},
        {"resample_rate_hz": -1.0},
        {"num_length_candidates": 0},
        {"length_range": (2.0, 1.0)},
        {"length_range": (0.0, 1.0)},
        {"profile_stride": 0},
        {"max_query_samples": 2},
        {"stable_window_s": 0.0},
        {"stationary_std_rad": -0.1},
        {"steering_rate_threshold": 0.0},
        {"max_head_rate": 0.0},
        {"continuity_margin": -0.1},
        {"escape_ratio": 0.0},
        {"escape_ratio": 1.5},
        {"horizon_s": -0.1},
        {"neighbor_positions": -1},
    ],
)
def test_invalid_configs_rejected(kwargs):
    with pytest.raises(ValueError):
        ViHOTConfig(**kwargs)


def test_config_is_frozen():
    config = ViHOTConfig()
    with pytest.raises(Exception):
        config.window_s = 0.5
