"""Diagnostics and profile-quality tests."""

import numpy as np
import pytest

from repro.core import ViHOTTracker
from repro.core.diagnostics import (
    DiagnosticThresholds,
    diagnose,
    should_reprofile,
)
from repro.core.profile import CsiProfile, PositionProfile
from repro.core.quality import assess_profile
from repro.core.tracker import Estimate, TrackingResult


def result_with(modes, distances=None):
    distances = distances or [0.01] * len(modes)
    estimates = [
        Estimate(0.1 * k, 0.1 * k, 0.0, mode, 0, d)
        for k, (mode, d) in enumerate(zip(modes, distances))
    ]
    return TrackingResult(estimates)


def test_diagnose_healthy_session(small_profile, runtime_stream):
    stream, _scene = runtime_stream
    tracking = ViHOTTracker(small_profile).process(stream, estimate_stride_s=0.1)
    health = diagnose(tracking, stream)
    assert health.verdict in ("healthy", "degraded")
    assert health.csi_fraction > 0.3
    assert health.sampling_rate_hz > 300.0
    assert "csi" in str(health)


def test_diagnose_mode_fractions():
    health = diagnose(result_with(["csi", "csi", "held", "fallback"]))
    assert health.csi_fraction == pytest.approx(0.5)
    assert health.hold_fraction == pytest.approx(0.25)
    assert health.fallback_fraction == pytest.approx(0.25)


def test_diagnose_degraded_on_low_csi():
    health = diagnose(result_with(["held"] * 8 + ["csi", "csi", "csi"]))
    assert health.verdict == "degraded"


def test_diagnose_unusable_on_bad_matches():
    modes = ["csi"] * 10
    health = diagnose(result_with(modes, distances=[0.5] * 10))
    assert health.verdict == "unusable"
    assert should_reprofile(health)


def test_diagnose_counts_position_switches():
    estimates = [
        Estimate(0.1 * k, 0.1 * k, 0.0, "csi", pos, 0.01)
        for k, pos in enumerate([2, 2, 3, 3, 2])
    ]
    health = diagnose(TrackingResult(estimates))
    assert health.position_switches == 2


def test_diagnose_empty_rejected():
    with pytest.raises(ValueError):
        diagnose(TrackingResult())


def test_should_reprofile_healthy_is_false():
    health = diagnose(result_with(["csi"] * 10))
    assert not should_reprofile(health)


def test_custom_thresholds():
    strict = DiagnosticThresholds(min_csi_fraction_healthy=0.99)
    health = diagnose(result_with(["csi"] * 9 + ["held"]), thresholds=strict)
    assert health.verdict == "degraded"


# ------------------------------------------------------------- quality
def synthetic_position(label, coverage_deg=160.0, sensitivity=0.012, noise=0.002,
                       phi0=0.0):
    n = 1000
    rng = np.random.default_rng(int(label * 100) + 1)
    orientations = np.deg2rad(coverage_deg / 2) * np.sin(np.linspace(0, 12, n))
    phases = sensitivity * np.rad2deg(orientations) + rng.normal(0, noise, n)
    return PositionProfile(label, 200.0, phases + phi0, orientations, phi0)


def test_quality_good_profile():
    profile = CsiProfile()
    for k in range(4):
        profile.add(synthetic_position(float(k), phi0=0.2 * k))
    quality = assess_profile(profile)
    assert quality.verdict == "good"
    assert quality.min_coverage_deg > 120.0
    assert quality.median_snr > 3.0


def test_quality_flags_poor_coverage():
    profile = CsiProfile()
    profile.add(synthetic_position(0.0, coverage_deg=40.0))
    quality = assess_profile(profile)
    assert quality.verdict == "poor"


def test_quality_flags_low_snr():
    profile = CsiProfile()
    profile.add(synthetic_position(0.0, sensitivity=0.0005, noise=0.05))
    quality = assess_profile(profile)
    assert quality.verdict == "poor"


def test_quality_marginal_on_colliding_fingerprints():
    profile = CsiProfile()
    for k in range(4):
        profile.add(synthetic_position(float(k), phi0=0.0005 * k))
    quality = assess_profile(profile)
    assert quality.verdict in ("marginal", "poor")
    assert quality.fingerprint_separation < 2.0


def test_quality_of_real_profile(small_profile):
    quality = assess_profile(small_profile)
    assert quality.verdict in ("good", "marginal")
    assert quality.min_coverage_deg > 100.0
    assert str(quality)


def test_quality_empty_rejected():
    with pytest.raises(ValueError):
        assess_profile(CsiProfile())
