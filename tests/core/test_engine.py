"""Estimation-engine tests: stage order, traces, terminal-stage mapping."""

import numpy as np
import pytest

from repro.core import ViHOTConfig, ViHOTTracker, diagnose
from repro.core.engine import EstimationEngine

#: The decision chain's canonical order (Secs. 3.4-3.6).
CHAIN = (
    "position",
    "steering",
    "stability_fix",
    "stationary",
    "match",
    "forecast",
    "jump_filter",
    "emit",
)

#: Every mode maps to exactly one terminal stage.
MODE_TERMINAL = {
    "csi": "emit",
    "init": "emit",
    "stationary": "stationary",
    "fallback": "steering",
    "held": "hold",
}


@pytest.fixture(scope="module")
def tracked(small_profile, runtime_stream):
    stream, scene = runtime_stream
    result = ViHOTTracker(small_profile, ViHOTConfig()).process(
        stream, estimate_stride_s=0.1
    )
    assert len(result) > 30
    return result, stream


def test_stage_order_is_pinned(small_profile):
    engine = EstimationEngine(small_profile)
    assert engine.stage_names == CHAIN
    assert engine.hold_stage_name == "hold"


def test_every_estimate_carries_a_trace(tracked):
    result, _stream = tracked
    for estimate in result.estimates:
        assert estimate.trace is not None
        assert len(estimate.trace.stages) >= 1
        assert all(t.elapsed_ms >= 0.0 for t in estimate.trace.stages)


def test_traces_follow_chain_order(tracked):
    """Each trace's stage sequence is an in-order subsequence of the chain
    (plus the off-chain hold terminal), starting at the position stage."""
    result, _stream = tracked
    order = {name: k for k, name in enumerate(CHAIN)}
    for estimate in result.estimates:
        names = estimate.trace.stage_names
        assert names[0] == "position"
        on_chain = [n for n in names if n != "hold"]
        indices = [order[n] for n in on_chain]
        assert indices == sorted(indices)
        if "hold" in names:
            assert names[-1] == "hold"


def test_mode_maps_to_exactly_one_terminal_stage(tracked):
    result, _stream = tracked
    for estimate in result.estimates:
        assert estimate.trace.terminal == MODE_TERMINAL[estimate.mode]
        # The terminal stage is the last one that ran.
        assert estimate.trace.stage_names[-1] == estimate.trace.terminal


def test_emitted_mode_is_the_position_stage_regime(tracked):
    """The init/csi regime decided by the position stage propagates to the
    output mode for every emit-terminal estimate — including stability
    fixes, which used to hardcode "csi"."""
    result, _stream = tracked
    for estimate in result.estimates:
        if estimate.trace.terminal != "emit":
            continue
        position = estimate.trace.stage("position")
        assert estimate.mode == position.detail["regime"]


def test_stability_fix_resolves_through_emit(tracked):
    result, _stream = tracked
    fixed = [e for e in result.estimates if e.trace.fired("stability_fix")]
    assert fixed, "session never hit a facing-front stability fix"
    for estimate in fixed:
        assert estimate.trace.terminal == "emit"
        assert estimate.orientation == 0.0
        # The fix skips the stationary/match stages entirely.
        assert estimate.trace.stage("match") is None


def test_match_detail_records_key_quantities(tracked):
    result, _stream = tracked
    matched = [
        e
        for e in result.estimates
        if e.trace.stage("match") is not None and e.trace.fired("match")
    ]
    assert matched
    for estimate in matched:
        detail = estimate.trace.stage("match").detail
        assert np.isfinite(detail["distance"])
        assert detail["tolerance_rad"] > 0.0
    # Emit-terminal matches surface the winning distance on the estimate.
    for estimate in matched:
        if estimate.trace.terminal == "emit":
            assert estimate.dtw_distance == estimate.trace.stage("match").detail["distance"]


def test_batch_tracker_is_engine_track_stream(small_profile, runtime_stream):
    """ViHOTTracker.process is a thin wrapper — outputs are bit-identical."""
    stream, _scene = runtime_stream
    via_tracker = ViHOTTracker(small_profile).process(stream, estimate_stride_s=0.1)
    via_engine = EstimationEngine(small_profile).track_stream(
        stream, estimate_stride_s=0.1
    )
    assert len(via_tracker) == len(via_engine)
    np.testing.assert_array_equal(
        via_tracker.orientations, np.array([e.orientation for e in via_engine])
    )
    assert via_tracker.modes == [e.mode for e in via_engine]


def test_forecast_stage_fires_only_with_horizon(small_profile, runtime_stream):
    stream, _scene = runtime_stream
    result = ViHOTTracker(small_profile, ViHOTConfig(horizon_s=0.2)).process(
        stream, estimate_stride_s=0.25
    )
    forecasted = [e for e in result.estimates if e.trace.stage("forecast") is not None]
    assert forecasted
    assert all(e.trace.fired("forecast") for e in forecasted)
    # With a horizon, the jump filter never fires (it only guards tracking).
    assert not any(e.trace.fired("jump_filter") for e in result.estimates)


def test_diagnose_reports_stage_stats(tracked):
    result, stream = tracked
    health = diagnose(result, stream)
    names = [stats.stage for stats in health.stage_stats]
    assert names[0] == "position"
    assert set(names) <= set(CHAIN) | {"hold"}

    position = health.stage("position")
    assert position.evaluated == len(result)
    assert position.terminal == 0
    for stats in health.stage_stats:
        assert stats.p50_ms <= stats.p90_ms
        assert stats.fired <= stats.evaluated
        assert str(stats)

    # Terminal counts partition the session's estimates.
    assert sum(s.terminal for s in health.stage_stats) == len(result)
    assert health.stage_report()


def test_manual_estimates_have_no_stage_stats():
    from repro.core.tracker import Estimate, TrackingResult

    result = TrackingResult([Estimate(0.0, 0.0, 0.1, "csi")])
    health = diagnose(result)
    assert health.stage_stats == ()
    assert health.stage("position") is None
    assert health.stage_report() == ""
