"""Batched engine execution: bit-identity against the sequential chain.

The sequential path (``EstimationEngine.estimate_at`` per session) is the
pinned reference; ``estimate_batch`` — including the batch-aware
``MatchStage.run_batch`` and ``SeriesMatcher.match_many`` underneath it —
must produce bit-identical estimates and identical session-state
evolution for any fleet of sessions sharing an engine.
"""

import numpy as np
import pytest

from repro.core import ViHOTConfig
from repro.core.engine import BatchItem, EstimationEngine
from repro.core.matching import SeriesMatcher
from repro.core.sanitize import sanitize_stream
from repro.core.stages import MatchStage, Stage, StageDecision
from repro.experiments.scenarios import Scenario, ScenarioConfig


@pytest.fixture(scope="module")
def fleet_world():
    """One profile plus several runtime captures (one per 'car')."""
    scenario = Scenario(
        ScenarioConfig(
            seed=19,
            num_positions=4,
            profile_seconds=5.0,
            runtime_duration_s=6.0,
        )
    )
    profile = scenario.build_profile()
    streams = [scenario.runtime_capture(k)[0] for k in range(5)]
    return profile, streams


def _phase_views(streams):
    return [sanitize_stream(s.times, s.csi) for s in streams]


def _run_sequential(engine, phases, streams, t_grid):
    states = [engine.new_session() for _ in phases]
    outputs = []
    for t in t_grid:
        row = []
        for phase, stream, state in zip(phases, streams, states):
            row.append(engine.estimate_at(phase, stream.imu, t, state))
        outputs.append(row)
    return outputs, states


def _run_batched(engine, phases, streams, t_grid):
    states = [engine.new_session() for _ in phases]
    outputs = []
    for t in t_grid:
        items = [
            BatchItem(phase, stream.imu, t, state)
            for phase, stream, state in zip(phases, streams, states)
        ]
        results = engine.estimate_batch(items)
        assert all(r.error is None for r in results)
        outputs.append([r.estimate for r in results])
    return outputs, states


def _t_grid(config, phases):
    start = max(p.start for p in phases) + max(
        config.window_s, config.stable_window_s
    )
    end = min(p.end for p in phases)
    return np.arange(start, end, 0.2)


def test_estimate_batch_bit_identical_to_sequential(fleet_world):
    """The headline pin: batched fleet execution is bit-identical to the
    per-session sequential chain, estimate by estimate."""
    profile, streams = fleet_world
    config = ViHOTConfig(profile_stride=6, num_length_candidates=3)
    phases = _phase_views(streams)
    t_grid = _t_grid(config, phases)
    assert len(t_grid) > 10

    seq_engine = EstimationEngine(profile, config)
    bat_engine = EstimationEngine(profile, config)
    seq, seq_states = _run_sequential(seq_engine, phases, streams, t_grid)
    bat, bat_states = _run_batched(bat_engine, phases, streams, t_grid)

    produced = 0
    for seq_row, bat_row in zip(seq, bat):
        for a, b in zip(seq_row, bat_row):
            assert a == b  # Estimate equality excludes trace timing
            if a is not None:
                produced += 1
                assert a.trace is not None and b.trace is not None
                assert a.trace.stage_names == b.trace.stage_names
                assert a.trace.terminal == b.trace.terminal
    assert produced > 20
    for s_state, b_state in zip(seq_states, bat_states):
        assert s_state.previous == b_state.previous
        assert s_state.last_confident_time == b_state.last_confident_time


def test_estimate_batch_with_imu_bit_identical(fleet_world):
    """Steering/hold paths (IMU present) batch bit-identically too."""
    profile, streams = fleet_world
    config = ViHOTConfig(profile_stride=6, num_length_candidates=3)
    with_imu = [s for s in streams if s.imu is not None] or streams
    phases = _phase_views(with_imu)
    t_grid = _t_grid(config, phases)

    seq, _ = _run_sequential(EstimationEngine(profile, config), phases, with_imu, t_grid)
    bat, _ = _run_batched(EstimationEngine(profile, config), phases, with_imu, t_grid)
    for seq_row, bat_row in zip(seq, bat):
        assert seq_row == bat_row


def test_match_stage_run_batch_bit_identical(fleet_world):
    """MatchStage.run_batch == looping MatchStage.run — the VH205 pin for
    the batch-aware match stage: bit-identical decisions and context
    mutations against the scalar stage."""
    profile, streams = fleet_world
    config = ViHOTConfig(profile_stride=6, num_length_candidates=3)
    engine = EstimationEngine(profile, config)
    phases = _phase_views(streams)
    t_grid = _t_grid(config, phases)

    stage = MatchStage(SeriesMatcher(profile, config), config)
    assert stage.batch_aware

    from repro.core.stages import EstimationContext

    def contexts_at(t):
        ctxs = []
        for phase, stream in zip(phases, streams):
            state = engine.new_session()
            ctx = EstimationContext(
                phase=phase,
                imu=stream.imu,
                t=float(t),
                position=state.position,
                default_position=len(profile) // 2,
            )
            ctx.position_index = len(profile) // 2
            ctxs.append(ctx)
        return ctxs

    checked = 0
    for t in t_grid[:: max(1, len(t_grid) // 5)]:
        seq_ctxs = contexts_at(t)
        bat_ctxs = contexts_at(t)
        seq_decisions = [stage.run(ctx) for ctx in seq_ctxs]
        bat_decisions = stage.run_batch(bat_ctxs)
        assert bat_decisions == seq_decisions
        for a, b in zip(seq_ctxs, bat_ctxs):
            assert a.match == b.match
        checked += sum(d.action == "pass" for d in seq_decisions)
    assert checked > 0


def test_match_many_bit_identical_to_match(fleet_world):
    """SeriesMatcher.match_many == SeriesMatcher.match per query, across
    mixed lengths, positions and continuity priors."""
    profile, _ = fleet_world
    config = ViHOTConfig(profile_stride=6, num_length_candidates=3)
    matcher = SeriesMatcher(profile, config)
    rng = np.random.default_rng(5)

    queries, positions, centers, tolerances = [], [], [], []
    for k in range(8):
        length = int(rng.choice([40, 40, 64, 80]))
        queries.append(rng.uniform(-np.pi, np.pi, length))
        positions.append(int(rng.integers(0, len(profile))))
        if k % 3 == 0:
            centers.append(None)
            tolerances.append(float("inf"))
        else:
            centers.append(float(rng.uniform(-0.5, 0.5)))
            tolerances.append(float(rng.uniform(0.3, 1.5)))

    batched = matcher.match_many(queries, positions, centers, tolerances)
    for i in range(len(queries)):
        single = matcher.match(queries[i], positions[i], centers[i], tolerances[i])
        assert batched[i] == single


def test_match_many_validation(fleet_world):
    profile, _ = fleet_world
    matcher = SeriesMatcher(profile, ViHOTConfig())
    with pytest.raises(ValueError):
        matcher.match_many([np.zeros(3)], [len(profile) + 1])
    with pytest.raises(ValueError):
        matcher.match_many([np.zeros(1)], [0])
    with pytest.raises(ValueError):
        matcher.match_many([np.zeros(3)], [0, 1])
    assert matcher.match_many([], []) == []


def test_default_run_batch_is_the_loop(fleet_world):
    """A stage without an override loops run() per context."""

    class CountingStage(Stage):
        name = "counting"

        def __init__(self):
            self.calls = 0

        def run(self, ctx):
            self.calls += 1
            return StageDecision.passthrough(fired=True, n=self.calls)

    stage = CountingStage()
    assert not stage.batch_aware
    decisions = stage.run_batch([object(), object(), object()])
    assert stage.calls == 3
    assert [d.detail["n"] for d in decisions] == [1, 2, 3]


def test_estimate_batch_contains_per_context_errors(fleet_world):
    """A poisoned context errors alone; healthy wave members still get
    their estimates, and the errored session's state is untouched."""
    profile, streams = fleet_world
    config = ViHOTConfig(profile_stride=6, num_length_candidates=3)
    engine = EstimationEngine(profile, config)
    phases = _phase_views(streams[:3])
    t_grid = _t_grid(config, phases)
    t = float(t_grid[len(t_grid) // 2])

    states = [engine.new_session() for _ in phases]

    class ExplodingPosition:
        def update(self, phase, t):
            raise RuntimeError("sensor gone")

        last_fix_time = None

    bad_state = engine.new_session()
    bad_state.position = ExplodingPosition()

    items = [
        BatchItem(phases[0], streams[0].imu, t, states[0]),
        BatchItem(phases[1], streams[1].imu, t, bad_state),
        BatchItem(phases[2], streams[2].imu, t, states[2]),
    ]
    results = engine.estimate_batch(items)
    assert results[1].error is not None
    assert isinstance(results[1].error, RuntimeError)
    assert results[1].estimate is None
    assert bad_state.previous is None
    assert results[0].error is None and results[2].error is None
    reference = engine.estimate_at(phases[0], streams[0].imu, t, engine.new_session())
    assert results[0].estimate == reference
