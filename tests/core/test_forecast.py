"""Forecasting tests (Sec. 3.4.6, Eq. 6)."""

import numpy as np
import pytest

from repro.core.forecast import forecast_orientation
from repro.core.matching import MatchResult
from repro.core.profile import CsiProfile, PositionProfile


RATE = 100.0


@pytest.fixture()
def profile():
    n = 500
    orientations = np.linspace(-1.0, 1.0, n)  # steadily turning
    phases = 0.5 * np.sin(orientations)
    p = CsiProfile()
    p.add(PositionProfile(0.0, RATE, phases, orientations, phi0=0.0))
    return p


def match_at(end_index, length=20, speed_ratio=1.0):
    return MatchResult(
        orientation=0.0,
        distance=0.0,
        position_index=0,
        start_index=end_index - length + 1,
        length=length,
        speed_ratio=speed_ratio,
    )


def test_zero_horizon_is_tracking(profile):
    match = match_at(200)
    predicted = forecast_orientation(profile, match, 0.0)
    assert predicted == pytest.approx(profile[0].orientations[200])


def test_forecast_steps_forward_in_profile(profile):
    match = match_at(200, speed_ratio=1.0)
    # 0.5 s at 100 Hz -> 50 samples ahead.
    predicted = forecast_orientation(profile, match, 0.5)
    assert predicted == pytest.approx(profile[0].orientations[250])


def test_speed_ratio_scales_step(profile):
    # Run time turning 2x faster than profiling: speed_ratio = Lm/W = 2,
    # so 0.2 s of run time covers 0.4 s of profile time.
    match = match_at(100, speed_ratio=2.0)
    predicted = forecast_orientation(profile, match, 0.2)
    assert predicted == pytest.approx(profile[0].orientations[140])


def test_forecast_clamps_at_profile_end(profile):
    match = match_at(490)
    predicted = forecast_orientation(profile, match, 10.0)
    assert predicted == pytest.approx(profile[0].orientations[-1])


def test_negative_horizon_rejected(profile):
    with pytest.raises(ValueError):
        forecast_orientation(profile, match_at(10), -0.1)


def test_forecast_error_grows_with_horizon():
    """Fig. 10's shape: when run time diverges from the profile's future,

    longer horizons predict worse."""
    n = 600
    # Profile turns right steadily...
    orientations = np.linspace(-1.0, 1.0, n)
    profile = CsiProfile()
    profile.add(
        PositionProfile(0.0, RATE, 0.5 * np.sin(orientations), orientations, 0.0)
    )
    # ...but at run time the driver reverses direction at the match point.
    match = match_at(300)
    truth_now = orientations[300]

    def runtime_truth(horizon):
        return truth_now - horizon * 0.33  # turning the *other* way

    errors = []
    for horizon in (0.0, 0.2, 0.4):
        predicted = forecast_orientation(profile, match, horizon)
        errors.append(abs(predicted - runtime_truth(horizon)))
    assert errors[0] < errors[1] < errors[2]
