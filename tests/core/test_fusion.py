"""Sensor-fusion tracker tests (Sec. 7 extension)."""

import numpy as np
import pytest

from repro.core import ViHOTConfig
from repro.core.fusion import FusedTracker, FusionConfig
from repro.sensors.camera import CameraTracker


def test_fusion_config_validation():
    with pytest.raises(ValueError):
        FusionConfig(camera_duty_cycle=1.5)
    with pytest.raises(ValueError):
        FusionConfig(camera_std_rad=0.0)
    with pytest.raises(ValueError):
        FusionConfig(max_frame_age_s=0.0)


def test_zero_duty_cycle_is_pure_vihot(small_profile, runtime_stream):
    stream, scene = runtime_stream
    camera = CameraTracker(scene, rng=np.random.default_rng(0))
    fused = FusedTracker(
        small_profile, camera, ViHOTConfig(),
        FusionConfig(camera_duty_cycle=0.0),
        rng=np.random.default_rng(1),
    )
    result = fused.process(stream, estimate_stride_s=0.2)
    assert "fused" not in result.modes


def test_full_duty_cycle_fuses_often(small_profile, runtime_stream):
    stream, scene = runtime_stream
    camera = CameraTracker(scene, rng=np.random.default_rng(0))
    fused = FusedTracker(
        small_profile, camera, ViHOTConfig(),
        FusionConfig(camera_duty_cycle=1.0),
        rng=np.random.default_rng(1),
    )
    result = fused.process(stream, estimate_stride_s=0.2)
    assert result.mode_fraction("fused") > 0.3


def test_fusion_accuracy_in_band(small_profile, runtime_stream, small_scenario):
    stream, scene = runtime_stream
    camera = CameraTracker(scene, rng=np.random.default_rng(0))
    fused = FusedTracker(
        small_profile, camera, rng=np.random.default_rng(1)
    )
    result = fused.process(stream, estimate_stride_s=0.1)
    truth = scene.driver_yaw(result.target_times)
    err = np.abs(np.rad2deg(result.orientations - truth))
    active = result.target_times > 2.5
    assert np.median(err[active]) < 10.0


def test_frames_used_scales_with_duty(small_profile, runtime_stream):
    stream, scene = runtime_stream
    camera = CameraTracker(scene, rng=np.random.default_rng(0))
    low = FusedTracker(small_profile, camera,
                       fusion_config=FusionConfig(camera_duty_cycle=0.1))
    high = FusedTracker(small_profile, camera,
                        fusion_config=FusionConfig(camera_duty_cycle=0.9))
    assert low.camera_frames_used(10.0) < high.camera_frames_used(10.0)
