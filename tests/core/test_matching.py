"""Series matcher tests (Algorithm 1)."""

import numpy as np
import pytest

from repro.core.config import ViHOTConfig
from repro.core.matching import MatchResult, SeriesMatcher
from repro.core.profile import CsiProfile, PositionProfile


RATE = 200.0


def synthetic_position(label=0.0, duration_s=8.0, phase_offset=0.0):
    """A smooth, mostly-monotone phase curve with known orientations."""
    n = int(duration_s * RATE)
    t = np.linspace(0, duration_s, n)
    # Orientation sweeps back and forth; phase is a monotone-ish function
    # of orientation plus a mild ripple (like the cabin's real curve).
    orientation = 1.2 * np.sin(2 * np.pi * t / duration_s * 1.5)
    phases = 0.9 * np.sin(orientation) + 0.05 * np.sin(3 * orientation) + phase_offset
    return PositionProfile(label, RATE, phases, orientation, phi0=phase_offset)


@pytest.fixture(scope="module")
def profile():
    p = CsiProfile()
    p.add(synthetic_position(label=0.0))
    p.add(synthetic_position(label=1.0, phase_offset=0.4))
    return p


@pytest.fixture(scope="module")
def matcher(profile):
    return SeriesMatcher(profile, ViHOTConfig(profile_stride=2))


def query_from_profile(position, end_index, length):
    return position.phases[end_index - length + 1 : end_index + 1].copy()


def test_exact_segment_recovered(matcher, profile):
    pos = profile[0]
    end = 700
    query = query_from_profile(pos, end, 20)
    result = matcher.match(query, 0)
    assert result.distance < 0.01
    assert result.orientation == pytest.approx(pos.orientations[end], abs=0.06)


def test_match_result_indices_consistent(matcher, profile):
    query = query_from_profile(profile[0], 500, 20)
    r = matcher.match(query, 0)
    assert r.end_index == r.start_index + r.length - 1
    assert 0 <= r.start_index < len(profile[0])
    assert r.speed_ratio == pytest.approx(r.length / len(query))


def test_speed_mismatch_resolved_by_length_search(profile):
    """A query recorded 2x faster matches a 2x longer profile segment."""
    matcher = SeriesMatcher(profile, ViHOTConfig(profile_stride=2))
    pos = profile[0]
    end = 700
    segment = pos.phases[end - 40 + 1 : end + 1]
    fast_query = segment[::2]  # the head moved twice as fast at run time
    result = matcher.match(fast_query, 0)
    assert result.orientation == pytest.approx(pos.orientations[end], abs=0.1)
    assert result.length > len(fast_query) * 1.4


def test_continuity_constraint_selects_near_branch(profile):
    matcher = SeriesMatcher(profile, ViHOTConfig(profile_stride=2, escape_ratio=0.01))
    pos = profile[0]
    # This curve passes through similar phase values on rising/falling
    # branches; anchor near a known branch and check we stay there.
    end = 700
    query = query_from_profile(pos, end, 20)
    anchor = float(pos.orientations[end])
    result = matcher.match(query, 0, center_orientation=anchor, tolerance_rad=0.2)
    assert abs(result.orientation - anchor) <= 0.2 + 1e-9


def test_continuity_falls_back_when_infeasible(profile):
    matcher = SeriesMatcher(profile, ViHOTConfig(profile_stride=2))
    query = query_from_profile(profile[0], 700, 20)
    # No profile sample is within 1e-6 rad of orientation 5.0: fall back
    # to the unconstrained match rather than failing.
    result = matcher.match(query, 0, center_orientation=5.0, tolerance_rad=1e-6)
    assert isinstance(result, MatchResult)


def test_escape_hatch_overrides_bad_anchor(profile):
    """A clearly better global match escapes a wrong continuity window."""
    matcher = SeriesMatcher(profile, ViHOTConfig(profile_stride=2, escape_ratio=0.9))
    pos = profile[0]
    end = 700
    query = query_from_profile(pos, end, 20)
    true_orientation = float(pos.orientations[end])
    # Anchor far from the truth, with a window that contains profile
    # samples (so feasible candidates exist) but not the true branch.
    wrong_anchor = -true_orientation
    result = matcher.match(
        query, 0, center_orientation=wrong_anchor, tolerance_rad=0.15
    )
    assert abs(result.orientation - true_orientation) < 0.15


def test_neighbor_positions_searched(profile):
    config = ViHOTConfig(profile_stride=2, neighbor_positions=1)
    matcher = SeriesMatcher(profile, config)
    # Query drawn from position 1; searching around position 0 with one
    # neighbour must find it in position 1.
    query = query_from_profile(profile[1], 600, 20)
    result = matcher.match(query, 0)
    assert result.position_index == 1


def test_validation(profile, matcher):
    with pytest.raises(ValueError):
        matcher.match(np.zeros(1), 0)
    with pytest.raises(ValueError):
        matcher.match(np.zeros(20), 5)
    with pytest.raises(ValueError):
        SeriesMatcher(CsiProfile())
