"""Additional matcher tests: bands, decimation, determinism."""

import numpy as np
import pytest

from repro.core.config import ViHOTConfig
from repro.core.matching import SeriesMatcher
from repro.core.profile import CsiProfile, PositionProfile


RATE = 200.0


def make_profile(duration_s=8.0):
    n = int(duration_s * RATE)
    t = np.linspace(0, duration_s, n)
    orientation = 1.2 * np.sin(2 * np.pi * t / duration_s * 1.5)
    phases = 0.9 * np.sin(orientation) + 0.05 * np.sin(3 * orientation)
    profile = CsiProfile()
    profile.add(PositionProfile(0.0, RATE, phases, orientation, 0.0))
    return profile


@pytest.fixture(scope="module")
def profile():
    return make_profile()


def query_at(profile, end, length=20):
    return profile[0].phases[end - length + 1 : end + 1].copy()


def test_matching_deterministic(profile):
    matcher = SeriesMatcher(profile, ViHOTConfig())
    q = query_at(profile, 600)
    a = matcher.match(q, 0)
    b = matcher.match(q, 0)
    assert a == b


def test_dtw_band_still_finds_match(profile):
    banded = SeriesMatcher(profile, ViHOTConfig(dtw_band=10))
    free = SeriesMatcher(profile, ViHOTConfig())
    q = query_at(profile, 600)
    rb = banded.match(q, 0)
    rf = free.match(q, 0)
    assert abs(rb.orientation - rf.orientation) < 0.15


def test_decimation_changes_little(profile):
    fine = SeriesMatcher(profile, ViHOTConfig(max_query_samples=100))
    coarse = SeriesMatcher(profile, ViHOTConfig(max_query_samples=8))
    q = query_at(profile, 700, length=40)
    rf = fine.match(q, 0)
    rc = coarse.match(q, 0)
    assert abs(rf.orientation - rc.orientation) < 0.2


def test_stride_one_at_least_as_good(profile):
    exact = SeriesMatcher(profile, ViHOTConfig(profile_stride=1))
    strided = SeriesMatcher(profile, ViHOTConfig(profile_stride=8))
    q = query_at(profile, 650)
    assert exact.match(q, 0).distance <= strided.match(q, 0).distance + 1e-12


def test_noisy_query_still_matches(profile):
    matcher = SeriesMatcher(profile, ViHOTConfig())
    rng = np.random.default_rng(0)
    end = 600
    q = query_at(profile, end) + rng.normal(0, 0.02, 20)
    result = matcher.match(q, 0)
    truth = profile[0].orientations[end]
    assert abs(result.orientation - truth) < 0.25


def test_length_candidates_all_usable_on_short_profile():
    short = make_profile(duration_s=0.5)  # 100 samples
    matcher = SeriesMatcher(short, ViHOTConfig())
    q = query_at(short, 60)
    result = matcher.match(q, 0)
    assert result.length <= 100
