"""Online tracker tests: streaming equivalence and buffer behaviour."""

import numpy as np
import pytest

from repro.core import ViHOTConfig, ViHOTTracker
from repro.core.online import OnlineTracker


def test_buffer_too_small_rejected(small_profile):
    with pytest.raises(ValueError):
        OnlineTracker(small_profile, buffer_s=0.5)


def test_not_ready_before_warmup(small_profile, runtime_stream):
    stream, _scene = runtime_stream
    online = OnlineTracker(small_profile)
    for k in range(10):
        online.push_csi(float(stream.times[k]), stream.csi[k])
    assert not online.ready()
    assert online.estimate() is None


def test_reordered_packets_dropped(small_profile, runtime_stream):
    stream, _scene = runtime_stream
    online = OnlineTracker(small_profile)
    online.push_csi(1.0, stream.csi[0])
    online.push_csi(0.5, stream.csi[1])  # late packet: dropped
    online.push_csi(1.5, stream.csi[2])
    assert len(online._phase_times) == 2


def test_buffer_eviction(small_profile, runtime_stream):
    stream, _scene = runtime_stream
    online = OnlineTracker(small_profile, buffer_s=3.0)
    for k in range(len(stream)):
        online.push_csi(float(stream.times[k]), stream.csi[k])
    assert online.buffered_seconds <= 3.0 + 0.1


def test_streaming_tracks_accurately(small_profile, runtime_stream):
    stream, scene = runtime_stream
    online = OnlineTracker(small_profile, ViHOTConfig())
    estimates = list(online.feed(stream, estimate_stride_s=0.1))
    assert len(estimates) > 20
    times = np.array([e.target_time for e in estimates])
    values = np.array([e.orientation for e in estimates])
    truth = scene.driver_yaw(times)
    err = np.abs(np.rad2deg(values - truth))
    assert np.median(err[times > 2.5]) < 10.0


def test_streaming_close_to_batch(small_profile, runtime_stream):
    """Online and batch trackers share logic; their error levels match.

    (Exact estimate-by-estimate equality is not required — estimate
    timestamps differ because the online path aligns them to packet
    arrivals — but the medians must agree.)"""
    stream, scene = runtime_stream
    batch = ViHOTTracker(small_profile).process(stream, estimate_stride_s=0.1)
    online = OnlineTracker(small_profile)
    streamed = list(online.feed(stream, estimate_stride_s=0.1))

    def median_err(times, values):
        truth = scene.driver_yaw(times)
        err = np.abs(np.rad2deg(values - truth))
        return float(np.median(err[times > 2.5]))

    batch_err = median_err(batch.target_times, batch.orientations)
    online_err = median_err(
        np.array([e.target_time for e in streamed]),
        np.array([e.orientation for e in streamed]),
    )
    assert abs(batch_err - online_err) < 3.0


def test_incremental_unwrap_matches_numpy(small_profile, runtime_stream):
    stream, _scene = runtime_stream
    online = OnlineTracker(small_profile)
    n = 400
    for k in range(n):
        online.push_csi(float(stream.times[k]), stream.csi[k])
    from repro.core.sanitize import sanitize_stream

    reference = sanitize_stream(stream.times[:n], stream.csi[:n])
    ours = np.asarray(online._phase_values)
    # Same shape up to a constant 2*pi multiple.
    delta = ours - np.asarray(reference.values)
    np.testing.assert_allclose(delta, delta[0], atol=1e-9)


def test_push_csi_shape_validation(small_profile):
    online = OnlineTracker(small_profile)
    with pytest.raises(ValueError):
        online.push_csi(0.0, np.zeros(30))
