"""Online tracker tests: streaming equivalence and buffer behaviour."""

import numpy as np
import pytest

from repro.core import ViHOTConfig, ViHOTTracker
from repro.core.online import OnlineTracker, SampleRing
from repro.experiments.scenarios import Scenario
from repro.sensors.camera import CameraTracker

from tests.conftest import SMALL


def test_buffer_too_small_rejected(small_profile):
    with pytest.raises(ValueError):
        OnlineTracker(small_profile, buffer_s=0.5)


def test_not_ready_before_warmup(small_profile, runtime_stream):
    stream, _scene = runtime_stream
    online = OnlineTracker(small_profile)
    for k in range(10):
        online.push_csi(float(stream.times[k]), stream.csi[k])
    assert not online.ready()
    assert online.estimate() is None


def test_reordered_packets_dropped(small_profile, runtime_stream):
    stream, _scene = runtime_stream
    online = OnlineTracker(small_profile)
    online.push_csi(1.0, stream.csi[0])
    online.push_csi(0.5, stream.csi[1])  # late packet: dropped
    online.push_csi(1.5, stream.csi[2])
    assert online.buffered_samples == 2


def test_buffer_eviction(small_profile, runtime_stream):
    stream, _scene = runtime_stream
    online = OnlineTracker(small_profile, buffer_s=3.0)
    for k in range(len(stream)):
        online.push_csi(float(stream.times[k]), stream.csi[k])
    assert online.buffered_seconds <= 3.0 + 0.1


def test_streaming_tracks_accurately(small_profile, runtime_stream):
    stream, scene = runtime_stream
    online = OnlineTracker(small_profile, ViHOTConfig())
    estimates = list(online.feed(stream, estimate_stride_s=0.1))
    assert len(estimates) > 20
    times = np.array([e.target_time for e in estimates])
    values = np.array([e.orientation for e in estimates])
    truth = scene.driver_yaw(times)
    err = np.abs(np.rad2deg(values - truth))
    assert np.median(err[times > 2.5]) < 10.0


def _median_err(scene, times, values):
    truth = scene.driver_yaw(times)
    err = np.abs(np.rad2deg(values - truth))
    return float(np.median(err[times > 2.5]))


def test_streaming_close_to_batch(small_profile, runtime_stream):
    """Online and batch trackers share the engine; error levels match.

    (Exact estimate-by-estimate equality is not required — estimate
    timestamps differ because the online path aligns them to packet
    arrivals — but the medians must agree.)"""
    stream, scene = runtime_stream
    batch = ViHOTTracker(small_profile).process(stream, estimate_stride_s=0.1)
    online = OnlineTracker(small_profile)
    streamed = list(online.feed(stream, estimate_stride_s=0.1))

    batch_err = _median_err(scene, batch.target_times, batch.orientations)
    online_err = _median_err(
        scene,
        np.array([e.target_time for e in streamed]),
        np.array([e.orientation for e in streamed]),
    )
    assert abs(batch_err - online_err) < 3.0


@pytest.fixture(scope="module")
def steering_capture(small_profile):
    """A run-time session with intersection turns (IMU side-channel on).

    Reuses the session-scoped profile — profiling scenes never steer, so
    the profile is the same world as the plain SMALL scenario's.
    """
    scenario = Scenario(SMALL.with_(steering="turns"))
    stream, scene = scenario.runtime_capture(0)
    assert stream.imu is not None
    return stream, scene


def test_streaming_close_to_batch_with_steering_and_camera(
    small_profile, steering_capture
):
    """Batch/online equivalence through steering events with a camera.

    Both frontends must route steering-polluted instants to the camera
    fallback (Sec. 3.6.2) and agree on overall error.  Separate camera
    instances with identical seeds keep the two runs' frame noise
    streams independent of each other's call pattern.
    """
    stream, scene = steering_capture
    batch_camera = CameraTracker(scene, rng=np.random.default_rng(42))
    online_camera = CameraTracker(scene, rng=np.random.default_rng(42))

    batch = ViHOTTracker(small_profile, camera=batch_camera).process(
        stream, estimate_stride_s=0.1
    )
    online = OnlineTracker(small_profile, camera=online_camera)
    streamed = list(online.feed(stream, estimate_stride_s=0.1))

    assert "fallback" in batch.modes
    assert "fallback" in [e.mode for e in streamed]

    batch_err = _median_err(scene, batch.target_times, batch.orientations)
    online_err = _median_err(
        scene,
        np.array([e.target_time for e in streamed]),
        np.array([e.orientation for e in streamed]),
    )
    assert batch_err < 12.0
    assert abs(batch_err - online_err) < 3.0


def test_steering_holds_without_camera(small_profile, steering_capture):
    """Without a camera, steering instants hold the previous estimate."""
    stream, _scene = steering_capture
    online = OnlineTracker(small_profile)
    streamed = list(online.feed(stream, estimate_stride_s=0.1))
    modes = {e.mode for e in streamed}
    assert "fallback" not in modes
    assert "held" in modes


def test_incremental_unwrap_matches_numpy(small_profile, runtime_stream):
    stream, _scene = runtime_stream
    online = OnlineTracker(small_profile)
    n = 400
    for k in range(n):
        online.push_csi(float(stream.times[k]), stream.csi[k])
    from repro.core.sanitize import sanitize_stream

    reference = sanitize_stream(stream.times[:n], stream.csi[:n])
    ours = np.asarray(online.phase_series().values)
    # Same shape up to a constant 2*pi multiple.
    delta = ours - np.asarray(reference.values)
    np.testing.assert_allclose(delta, delta[0], atol=1e-9)


def test_push_csi_shape_validation(small_profile):
    online = OnlineTracker(small_profile)
    with pytest.raises(ValueError):
        online.push_csi(0.0, np.zeros(30))


def test_push_csi_nonfinite_time_rejected(small_profile, runtime_stream):
    stream, _scene = runtime_stream
    online = OnlineTracker(small_profile)
    for bad in (float("nan"), float("inf"), -float("inf")):
        with pytest.raises(ValueError, match="finite"):
            online.push_csi(bad, stream.csi[0])
    assert online.buffered_samples == 0


def test_push_imu_nonfinite_rejected(small_profile):
    online = OnlineTracker(small_profile)
    with pytest.raises(ValueError, match="finite"):
        online.push_imu(float("nan"), 0.1)
    with pytest.raises(ValueError, match="finite"):
        online.push_imu(0.0, float("inf"))
    online.push_imu(0.0, 0.1)  # finite reading still accepted


# ----------------------------------------------------------------- ring
def test_ring_grows_and_stays_ordered():
    ring = SampleRing(capacity=4)
    for k in range(100):
        ring.append(0.01 * k, float(k))
    assert len(ring) == 100
    np.testing.assert_allclose(np.diff(ring.times()), 0.01, atol=1e-12)
    np.testing.assert_allclose(ring.values(), np.arange(100.0))


def test_ring_eviction_then_compaction_reuses_capacity():
    ring = SampleRing(capacity=64)
    for k in range(10_000):
        ring.append(0.01 * k, float(k))
        ring.evict_before(0.01 * k - 0.3)  # keep ~30 live samples
    assert len(ring) <= 32
    # Amortised reuse: the buffer never needed to grow for a bounded span.
    assert ring.capacity == 64
    assert ring.first_time >= 0.01 * 9_999 - 0.3 - 1e-9
    assert ring.last_time == pytest.approx(0.01 * 9_999)


def test_ring_views_are_zero_copy():
    ring = SampleRing(capacity=16)
    for k in range(8):
        ring.append(float(k), float(k))
    times = ring.times()
    assert times.base is not None  # a view, not a fresh array
    series = ring.series()
    assert np.shares_memory(series.values, ring.values())
