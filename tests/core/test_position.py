"""Position estimator tests (Sec. 3.4.1, Eq. 4)."""

import numpy as np
import pytest

from repro.core.position import PositionEstimator, detect_stable_phase
from repro.core.profile import CsiProfile, PositionProfile
from repro.dsp.series import TimeSeries


def make_profile(phi0s):
    profile = CsiProfile()
    for k, phi0 in enumerate(phi0s):
        profile.add(
            PositionProfile(
                label=float(k),
                rate_hz=100.0,
                phases=np.sin(np.linspace(0, 3, 50)),
                orientations=np.linspace(-1, 1, 50),
                phi0=phi0,
            )
        )
    return profile


def flat_series(level, duration=2.0, rate=200.0, noise=0.0, seed=0):
    rng = np.random.default_rng(seed)
    times = np.arange(0, duration, 1.0 / rate)
    values = level + rng.normal(0, noise, len(times))
    return TimeSeries(times, values)


def test_detect_stable_on_flat_phase():
    series = flat_series(0.4, noise=0.01)
    level = detect_stable_phase(series, t=2.0, window_s=0.5, std_threshold_rad=0.06)
    assert level == pytest.approx(0.4, abs=0.01)


def test_detect_stable_rejects_moving_phase():
    times = np.arange(0, 2, 0.005)
    series = TimeSeries(times, np.sin(2 * np.pi * times))
    assert detect_stable_phase(series, 2.0, 0.5, 0.06) is None


def test_detect_stable_needs_samples():
    series = flat_series(0.0, duration=0.01)
    assert detect_stable_phase(series, 2.0, 0.5, 0.06) is None


def test_detect_stable_validation():
    series = flat_series(0.0)
    with pytest.raises(ValueError):
        detect_stable_phase(series, 1.0, -0.5, 0.06)


def test_eq4_picks_nearest_fingerprint():
    estimator = PositionEstimator(make_profile([-0.4, -0.1, 0.2, 0.5]))
    assert estimator.estimate_from_phi0(0.18) == 2
    assert estimator.estimate_from_phi0(-0.35) == 0


def test_eq4_circular_distance():
    estimator = PositionEstimator(make_profile([np.pi - 0.05, 0.0]))
    # -pi + 0.05 is 0.1 rad from pi - 0.05 on the circle, far from 0.
    assert estimator.estimate_from_phi0(-np.pi + 0.05) == 0


def test_tie_breaking_prefers_current_position():
    # Fingerprints of positions 0 and 3 nearly collide; once anchored at
    # 3, a phi0 between them must stay at 3 (heads drift, not teleport).
    estimator = PositionEstimator(
        make_profile([0.30, 0.10, -0.10, 0.31]), tie_margin_rad=0.04
    )
    estimator._current = 3
    assert estimator.estimate_from_phi0(0.305) == 3
    estimator._current = 0
    assert estimator.estimate_from_phi0(0.305) == 0


def test_update_holds_position_while_turning():
    estimator = PositionEstimator(make_profile([-0.2, 0.2]), window_s=0.5)
    stable = flat_series(0.19, duration=2.0)
    assert estimator.update(stable, 2.0) == 1
    assert estimator.last_fix_time == 2.0
    # Now the phase moves: the estimate holds, the fix time does not advance.
    times = np.arange(2.0, 3.0, 0.005)
    moving = TimeSeries(times, np.sin(20 * times))
    combined = stable.concat(moving)
    assert estimator.update(combined, 3.0) == 1
    assert estimator.last_fix_time == 2.0


def test_update_before_any_fix_returns_none():
    estimator = PositionEstimator(make_profile([0.0, 0.5]))
    times = np.arange(0, 1, 0.005)
    moving = TimeSeries(times, np.sin(30 * times))
    assert estimator.update(moving, 1.0) is None


def test_empty_profile_rejected():
    with pytest.raises(ValueError):
        PositionEstimator(CsiProfile())
