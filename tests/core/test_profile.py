"""Profile data-structure and persistence tests."""

import numpy as np
import pytest

from repro.core.profile import CsiProfile, PositionProfile


def make_position(label=0.0, n=100, rate=200.0, phi0=0.3):
    phases = np.sin(np.linspace(0, 4, n))
    orientations = np.linspace(-1.0, 1.0, n)
    return PositionProfile(label, rate, phases, orientations, phi0)


def test_position_profile_wraps_inputs():
    p = PositionProfile(0.0, 100.0, np.array([4.0, -4.0]), np.zeros(2), 7.0)
    assert np.all(p.phases <= np.pi)
    assert np.all(p.phases > -np.pi)
    assert -np.pi < p.phi0 <= np.pi


def test_position_profile_validation():
    with pytest.raises(ValueError):
        PositionProfile(0.0, 100.0, np.zeros(1), np.zeros(1), 0.0)
    with pytest.raises(ValueError):
        PositionProfile(0.0, 0.0, np.zeros(5), np.zeros(5), 0.0)
    with pytest.raises(ValueError):
        PositionProfile(0.0, 100.0, np.zeros(5), np.zeros(4), 0.0)


def test_position_profile_properties():
    p = make_position(n=201, rate=100.0)
    assert p.duration_s == pytest.approx(2.0)
    lo, hi = p.orientation_range
    assert lo == pytest.approx(-1.0)
    assert hi == pytest.approx(1.0)
    assert len(p) == 201


def test_profile_add_and_iterate():
    profile = CsiProfile(driver="X")
    profile.add(make_position(label=-0.01))
    profile.add(make_position(label=0.01))
    assert len(profile) == 2
    assert [p.label for p in profile] == [-0.01, 0.01]
    assert profile[1].label == 0.01
    assert profile.rate_hz == 200.0


def test_profile_rejects_rate_mismatch():
    profile = CsiProfile()
    profile.add(make_position(rate=200.0))
    with pytest.raises(ValueError):
        profile.add(make_position(rate=100.0))


def test_profile_fingerprints():
    profile = CsiProfile()
    profile.add(make_position(phi0=0.1))
    profile.add(make_position(phi0=-0.2))
    np.testing.assert_allclose(profile.phi0_fingerprints(), [0.1, -0.2])


def test_empty_profile_errors():
    profile = CsiProfile()
    with pytest.raises(ValueError):
        _ = profile.rate_hz


def test_save_load_roundtrip(tmp_path):
    profile = CsiProfile(driver="roundtrip")
    for k, label in enumerate((-0.02, 0.0, 0.02)):
        profile.add(make_position(label=label, phi0=0.1 * k))
    path = tmp_path / "driver.npz"
    profile.save(path)

    loaded = CsiProfile.load(path)
    assert loaded.driver == "roundtrip"
    assert len(loaded) == 3
    for orig, back in zip(profile, loaded):
        assert back.label == orig.label
        assert back.rate_hz == orig.rate_hz
        assert back.phi0 == pytest.approx(orig.phi0)
        np.testing.assert_allclose(back.phases, orig.phases)
        np.testing.assert_allclose(back.orientations, orig.orientations)


def test_load_missing_file(tmp_path):
    with pytest.raises(FileNotFoundError):
        CsiProfile.load(tmp_path / "nope.npz")
