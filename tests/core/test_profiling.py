"""Profiling-stage tests (Sec. 3.3) against the simulated link."""

import numpy as np
import pytest

from repro.core.profiling import ProfileBuilder, build_position_profile
from repro.dsp.series import TimeSeries


def test_build_position_profile(small_scenario):
    config = small_scenario.config
    scene = small_scenario.profiling_scene(0)
    link = small_scenario._link(scene, 99)
    total = config.profile_front_hold_s + config.profile_seconds
    stream = link.capture(0.0, total, with_imu=False)
    truth = TimeSeries(stream.times, scene.driver_yaw(stream.times))
    position = build_position_profile(
        stream, truth, label=-0.01, front_hold_s=config.profile_front_hold_s
    )
    assert position.label == -0.01
    assert len(position) > 500
    # The profiled orientations cover the scan amplitude.
    lo, hi = position.orientation_range
    assert lo < -np.deg2rad(50)
    assert hi > np.deg2rad(50)
    # phi0 is the wrapped facing-front phase.
    assert -np.pi < position.phi0 <= np.pi


def test_profile_phase_orientation_consistency(small_profile):
    """Within one position, nearby orientations must have nearby phases

    (on the same sweep branch) — the relation of Fig. 3 is a curve, not
    a scatter."""
    position = small_profile[0]
    # Take rising-sweep samples only (positive orientation derivative).
    rising = np.diff(position.orientations) > 0.001
    phases = position.phases[:-1][rising]
    orientations = position.orientations[:-1][rising]
    order = np.argsort(orientations)
    phase_sorted = phases[order]
    # A curve: total variation is a small multiple of the range.
    total_variation = np.abs(np.diff(phase_sorted)).sum()
    value_range = np.ptp(phase_sorted)
    assert total_variation < 6 * value_range


def test_fingerprints_distinct_across_positions(small_profile):
    phi0s = small_profile.phi0_fingerprints()
    assert len(np.unique(np.round(phi0s, 3))) > 1


def test_builder_collects_positions(small_scenario):
    builder = ProfileBuilder(driver="T", rate_hz=200.0)
    config = small_scenario.config
    total = config.profile_front_hold_s + config.profile_seconds
    for k in range(2):
        scene = small_scenario.profiling_scene(k)
        link = small_scenario._link(scene, 98, extra=k)
        stream = link.capture(0.0, total, with_imu=False)
        truth = TimeSeries(stream.times, scene.driver_yaw(stream.times))
        builder.add_position(
            stream, truth, label=float(k), front_hold_s=config.profile_front_hold_s
        )
    profile = builder.build()
    assert len(profile) == 2
    assert profile.driver == "T"


def test_builder_empty_rejected():
    with pytest.raises(ValueError):
        ProfileBuilder().build()


def test_profiling_duration_within_paper_budget(small_scenario):
    """10 positions x (hold + scan) must fit the paper's ~100 s claim."""
    config = small_scenario.config
    per_position = config.profile_front_hold_s + config.profile_seconds
    assert 10 * per_position <= 100.0
