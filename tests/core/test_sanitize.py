"""Sanitiser tests — the CFO/SFO cancellation of Sec. 3.2."""

import numpy as np
import pytest

from repro.core.sanitize import (
    antenna_phase_difference,
    sanitize_stream,
    sanitize_streams,
)
from repro.rf.impairments import HardwareImpairments, ImpairmentConfig
from repro.rf.spectrum import Spectrum


def make_clean_csi(phase_diff_rad, num_packets=40, spectrum=None):
    """CSI where antenna 0 leads antenna 1 by a known phase."""
    spectrum = spectrum or Spectrum()
    base = np.exp(1j * np.linspace(0, 1, spectrum.num_subcarriers))
    csi = np.empty((num_packets, 2, spectrum.num_subcarriers), dtype=complex)
    csi[:, 1, :] = base
    csi[:, 0, :] = base * np.exp(1j * phase_diff_rad)
    return csi


def test_recovers_known_difference():
    csi = make_clean_csi(0.7)
    phases = antenna_phase_difference(csi)
    np.testing.assert_allclose(phases, 0.7, atol=1e-9)


def test_difference_sign_convention():
    csi = make_clean_csi(-0.4)
    phases = antenna_phase_difference(csi)
    np.testing.assert_allclose(phases, -0.4, atol=1e-9)


def test_cancels_cfo_and_sfo():
    """The headline property: impairments common to both antennas vanish."""
    spectrum = Spectrum()
    csi = make_clean_csi(0.5, num_packets=200, spectrum=spectrum)
    imp = HardwareImpairments(
        spectrum,
        ImpairmentConfig(snr_db=200.0),  # isolate CFO/SFO
        rng=np.random.default_rng(0),
    )
    noisy = imp.apply(csi, np.linspace(0, 2, 200))
    # Raw per-antenna phase is garbage...
    raw = np.angle(noisy[:, 0, 0])
    assert np.std(np.diff(raw)) > 0.1
    # ...but the antenna difference is still exactly 0.5.
    phases = antenna_phase_difference(noisy)
    np.testing.assert_allclose(phases, 0.5, atol=1e-3)


def test_subcarrier_averaging_reduces_thermal_noise():
    spectrum = Spectrum()
    csi = make_clean_csi(0.3, num_packets=500, spectrum=spectrum)
    imp = HardwareImpairments(
        spectrum,
        ImpairmentConfig(cfo_step_rad=0, cfo_jitter_rad=0, sfo_delay_std_s=0, snr_db=20.0),
        rng=np.random.default_rng(1),
    )
    noisy = imp.apply(csi, np.linspace(0, 2, 500))
    averaged = antenna_phase_difference(noisy)
    single = np.angle(noisy[:, 0, 0] * np.conj(noisy[:, 1, 0]))
    assert np.std(averaged) < 0.5 * np.std(single)


def test_antenna_selection():
    csi = make_clean_csi(0.2)
    swapped = antenna_phase_difference(csi, rx_a=1, rx_b=0)
    np.testing.assert_allclose(swapped, -0.2, atol=1e-9)
    with pytest.raises(ValueError):
        antenna_phase_difference(csi, rx_a=0, rx_b=0)
    with pytest.raises(ValueError):
        antenna_phase_difference(csi, rx_a=0, rx_b=5)


def test_sanitize_stream_unwraps():
    # A phase ramping past pi must come out continuous.
    num = 100
    spectrum = Spectrum()
    ramp = np.linspace(0, 3 * np.pi, num)
    base = np.exp(1j * np.linspace(0, 1, spectrum.num_subcarriers))
    csi = np.empty((num, 2, spectrum.num_subcarriers), dtype=complex)
    csi[:, 1, :] = base
    csi[:, 0, :] = base * np.exp(1j * ramp)[:, None]
    series = sanitize_stream(np.linspace(0, 1, num), csi)
    np.testing.assert_allclose(np.asarray(series.values), ramp, atol=1e-6)


def test_sanitize_stream_length_mismatch():
    csi = make_clean_csi(0.1, num_packets=5)
    with pytest.raises(ValueError):
        sanitize_stream(np.zeros(4), csi)


def test_shape_validation():
    with pytest.raises(ValueError):
        antenna_phase_difference(np.zeros((3, 30), dtype=complex))


# ----------------------------------------------------------------------
# Batched sanitiser: bit-identity to the scalar kernel
# ----------------------------------------------------------------------
def _random_fleet_csi(rng, n_sessions=7, num_packets=60, spectrum=None):
    spectrum = spectrum or Spectrum()
    shape = (n_sessions, num_packets, 3, spectrum.num_subcarriers)
    return rng.standard_normal(shape) + 1j * rng.standard_normal(shape)


@pytest.mark.parametrize("unwrap", [True, False])
def test_sanitize_streams_bit_identical_to_loop(unwrap):
    rng = np.random.default_rng(21)
    csi = _random_fleet_csi(rng)
    times = np.linspace(0.0, 1.5, csi.shape[1])
    got = sanitize_streams(times, csi, rx_a=0, rx_b=2, unwrap=unwrap)
    assert len(got) == csi.shape[0]
    for s, series in enumerate(got):
        want = sanitize_stream(times, csi[s], rx_a=0, rx_b=2, unwrap=unwrap)
        np.testing.assert_array_equal(
            np.asarray(series.values), np.asarray(want.values)
        )
        np.testing.assert_array_equal(
            np.asarray(series.times), np.asarray(want.times)
        )


def test_sanitize_streams_per_session_clocks():
    rng = np.random.default_rng(22)
    csi = _random_fleet_csi(rng, n_sessions=4, num_packets=30)
    clocks = np.cumsum(rng.uniform(0.01, 0.05, (4, 30)), axis=1)
    got = sanitize_streams(clocks, csi)
    for s, series in enumerate(got):
        want = sanitize_stream(clocks[s], csi[s])
        np.testing.assert_array_equal(
            np.asarray(series.values), np.asarray(want.values)
        )
        np.testing.assert_array_equal(
            np.asarray(series.times), np.asarray(want.times)
        )


def test_sanitize_streams_single_packet_no_unwrap():
    rng = np.random.default_rng(23)
    csi = _random_fleet_csi(rng, n_sessions=3, num_packets=1)
    got = sanitize_streams(np.array([0.0]), csi)
    for s, series in enumerate(got):
        want = sanitize_stream(np.array([0.0]), csi[s])
        np.testing.assert_array_equal(
            np.asarray(series.values), np.asarray(want.values)
        )


def test_sanitize_streams_validation():
    with pytest.raises(ValueError):
        sanitize_streams(np.zeros(5), np.zeros((5, 2, 30), dtype=complex))
    with pytest.raises(ValueError):
        sanitize_streams(np.zeros(4), np.zeros((2, 5, 2, 30), dtype=complex))
    with pytest.raises(ValueError):
        sanitize_streams(
            np.zeros((3, 5)), np.zeros((2, 5, 2, 30), dtype=complex)
        )
    assert sanitize_streams(np.zeros(5), np.zeros((0, 5, 2, 30), dtype=complex)) == []


def test_sanitize_preserves_float64_end_to_end():
    """The declared dtype contract: complex128 CSI in, float64 phases
    out, at every sanitisation boundary (pinned for VH503)."""
    rng = np.random.default_rng(47)
    csi = (
        rng.normal(size=(20, 2, 4)) + 1j * rng.normal(size=(20, 2, 4))
    ).astype(np.complex128)
    times = np.linspace(0.0, 1.0, 20)

    diff = antenna_phase_difference(csi)
    assert diff.dtype == np.float64

    series = sanitize_stream(times, csi)
    assert np.asarray(series.times).dtype == np.float64
    assert np.asarray(series.values).dtype == np.float64

    stacked = sanitize_streams(times, csi[None, ...].repeat(3, axis=0))
    for one in stacked:
        assert np.asarray(one.times).dtype == np.float64
        assert np.asarray(one.values).dtype == np.float64
