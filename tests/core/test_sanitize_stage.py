"""SanitizeStage: batch-aware raw-CSI sanitization, pinned bit-identical.

This file is the VH205 batch pin for :class:`SanitizeStage`: its
``run_batch`` over a fleet of equal-shape captures must produce
bit-identical ``ctx.phase`` series to ``run`` on each context alone, and
the whole-capture convenience wrapper
:meth:`EstimationEngine.track_streams` must equal a scalar
``track_stream`` loop estimate for estimate.
"""

import numpy as np
import pytest

from repro.core import ViHOTConfig
from repro.core.engine import EstimationEngine
from repro.core.sanitize import sanitize_stream
from repro.core.stages import EstimationContext, SanitizeStage
from repro.dsp.series import TimeSeries
from repro.experiments.scenarios import Scenario, ScenarioConfig


@pytest.fixture(scope="module")
def capture_world():
    """One profile plus several equal-length runtime captures."""
    scenario = Scenario(
        ScenarioConfig(
            seed=23,
            num_positions=4,
            profile_seconds=5.0,
            runtime_duration_s=6.0,
        )
    )
    profile = scenario.build_profile()
    streams = [scenario.runtime_capture(k)[0] for k in range(4)]
    return profile, streams


def _context(engine, stream):
    state = engine.new_session()
    return EstimationContext(
        phase=TimeSeries.empty(),
        imu=stream.imu,
        t=0.0,
        position=state.position,
        default_position=engine._default_position,
        raw_times=stream.times,
        raw_csi=stream.csi,
    )


def test_run_batch_bit_identical_to_run(capture_world):
    """The pin: SanitizeStage.run_batch over equal-shape captures is
    bit-identical to SanitizeStage.run per context."""
    profile, streams = capture_world
    config = ViHOTConfig(profile_stride=6, num_length_candidates=3)
    engine = EstimationEngine(profile, config)
    stage = SanitizeStage()

    solo = [_context(engine, s) for s in streams]
    for ctx in solo:
        decision = stage.run(ctx)
        assert decision.fired

    stacked = [_context(engine, s) for s in streams]
    decisions = stage.run_batch(stacked)
    assert all(d.fired for d in decisions)

    for a, b in zip(solo, stacked):
        assert np.array_equal(a.phase.times, b.phase.times)
        assert np.array_equal(a.phase.values, b.phase.values)


def test_run_batch_matches_sanitize_stream(capture_world):
    """Each batched phase equals the scalar sanitize_stream output."""
    profile, streams = capture_world
    engine = EstimationEngine(profile, ViHOTConfig(profile_stride=6))
    contexts = [_context(engine, s) for s in streams]
    SanitizeStage().run_batch(contexts)
    for ctx, stream in zip(contexts, streams):
        reference = sanitize_stream(stream.times, stream.csi)
        assert np.array_equal(ctx.phase.times, reference.times)
        assert np.array_equal(ctx.phase.values, reference.values)


def test_ragged_batch_falls_back_per_context(capture_world):
    """Captures of different lengths cannot stack; each one must still
    come out bit-identical to its scalar run."""
    profile, streams = capture_world
    engine = EstimationEngine(profile, ViHOTConfig(profile_stride=6))
    short = streams[0]
    cut = len(short.times) // 2
    ragged = [_context(engine, s) for s in streams[1:]]
    odd = EstimationContext(
        phase=TimeSeries.empty(),
        imu=short.imu,
        t=0.0,
        position=engine.new_session().position,
        default_position=engine._default_position,
        raw_times=short.times[:cut],
        raw_csi=short.csi[:cut],
    )
    contexts = [odd] + ragged
    decisions = SanitizeStage().run_batch(contexts)
    assert all(d.fired for d in decisions)
    reference = sanitize_stream(short.times[:cut], short.csi[:cut])
    assert np.array_equal(odd.phase.times, reference.times)
    assert np.array_equal(odd.phase.values, reference.values)


def test_run_without_raw_capture_is_a_no_op(capture_world):
    """Online contexts sanitize at ingest; the stage must pass through."""
    profile, streams = capture_world
    engine = EstimationEngine(profile, ViHOTConfig(profile_stride=6))
    ctx = _context(engine, streams[0])
    ctx.raw_times = None
    ctx.raw_csi = None
    decision = SanitizeStage().run(ctx)
    assert not decision.fired
    assert len(ctx.phase) == 0


def test_track_streams_equals_scalar_track_stream(capture_world):
    """The whole-capture batch API returns bit-identical estimates to a
    track_stream loop, including with a ragged member."""
    profile, streams = capture_world
    config = ViHOTConfig(profile_stride=6, num_length_candidates=3)
    engine = EstimationEngine(profile, config)

    from repro.net.link import CsiStream

    cut = len(streams[0].times) * 2 // 3
    fleet = [
        CsiStream(
            times=streams[0].times[:cut],
            csi=streams[0].csi[:cut],
            seqs=streams[0].seqs[:cut],
            imu=streams[0].imu,
        ),
        streams[1],
        streams[2],
    ]
    batched = engine.track_streams(fleet)
    scalar = [engine.track_stream(s) for s in fleet]
    assert [len(b) for b in batched] == [len(s) for s in scalar]
    for b_run, s_run in zip(batched, scalar):
        for b, s in zip(b_run, s_run):
            assert b == s
