"""StationaryStage: batch-aware flat-window detection, pinned bit-identical.

This file is the VH205 batch pin for :class:`StationaryStage`: its
``run_batch`` over a fleet of same-length windows must produce
bit-identical decisions (action, estimate, flatness detail) to ``run``
on each context alone, and the per-context ``horizon_s`` carried by
:class:`EstimationContext` must win over the group leader's config so
mixed forecast/plain batches never stamp the wrong target time.
"""

import numpy as np

from repro.core import ViHOTConfig
from repro.core.stages import Estimate, EstimationContext, StationaryStage
from repro.dsp.series import TimeSeries


def _phase_window(seed: int, n: int, spread: float, t_end: float = 2.0):
    """A phase series of ``n`` samples ending at ``t_end``."""
    rng = np.random.default_rng(seed)
    times = np.linspace(t_end - 0.9, t_end, n)
    values = rng.normal(0.4, spread, n)
    return TimeSeries(times, values)


def _context(phase, t=2.0, previous_orientation=0.3, horizon_s=None):
    previous = (
        None
        if previous_orientation is None
        else Estimate(t - 0.1, t - 0.1, previous_orientation, "csi", 1)
    )
    return EstimationContext(
        phase=phase,
        imu=None,
        t=t,
        position=None,  # the stationary stage never touches the estimator
        default_position=0,
        previous=previous,
        horizon_s=horizon_s,
        position_index=1,
    )


def _fleet(config):
    """A mixed fleet: stackable groups, singletons, and passthroughs."""
    contexts = []
    # Two stackable groups (same window length), flat and noisy members.
    for seed in range(4):
        contexts.append(_context(_phase_window(seed, 40, 0.001)))
    for seed in range(3):
        contexts.append(_context(_phase_window(10 + seed, 40, 1.5)))
    for seed in range(3):
        contexts.append(_context(_phase_window(20 + seed, 25, 0.002)))
    # Singleton window length.
    contexts.append(_context(_phase_window(30, 33, 0.003)))
    # Too-short window and no-previous: must pass through untouched.
    contexts.append(_context(_phase_window(31, 3, 0.001)))
    contexts.append(_context(_phase_window(32, 40, 0.001), previous_orientation=None))
    return contexts


def test_run_batch_bit_identical_to_run():
    """The pin: StationaryStage.run_batch over a mixed fleet is
    bit-identical to StationaryStage.run per context — same actions,
    same estimates, and bitwise-equal flatness details."""
    config = ViHOTConfig()
    stage = StationaryStage(config)
    solo = [stage.run(ctx) for ctx in _fleet(config)]
    batched = stage.run_batch(_fleet(config))
    assert len(solo) == len(batched)
    fired = [d.fired for d in solo]
    assert any(fired) and not all(fired)  # the fleet exercises both paths
    for a, b in zip(solo, batched):
        assert a.action == b.action
        assert a.fired == b.fired
        assert a.estimate == b.estimate
        # Flatness must match to the last bit, not approximately.
        assert a.detail == b.detail


def test_batch_respects_per_context_horizon():
    """Forecast and plain sessions batch together (the planner's group
    key normalizes horizon_s), so each emitted estimate must carry its
    own session's horizon — not the group leader's."""
    stage = StationaryStage(ViHOTConfig())  # leader config: horizon 0
    contexts = [
        _context(_phase_window(seed, 40, 0.001), horizon_s=h)
        for seed, h in ((0, 0.0), (1, 0.5), (2, 0.2), (3, 0.0))
    ]
    decisions = stage.run_batch(contexts)
    assert all(d.fired for d in decisions)
    for ctx, decision in zip(contexts, decisions):
        assert decision.estimate.mode == "stationary"
        assert decision.estimate.target_time == ctx.t + ctx.horizon_s


def test_unset_context_horizon_falls_back_to_stage_config():
    """Contexts built outside the engine (horizon_s=None) keep the old
    behaviour: the stage's own config horizon."""
    config = ViHOTConfig(horizon_s=0.4)
    stage = StationaryStage(config)
    decision = stage.run(_context(_phase_window(0, 40, 0.001)))
    assert decision.fired
    assert decision.estimate.target_time == 2.0 + 0.4


def test_emitted_estimate_reissues_previous_orientation():
    stage = StationaryStage(ViHOTConfig())
    decision = stage.run(
        _context(_phase_window(5, 40, 0.001), previous_orientation=-0.7)
    )
    assert decision.fired
    assert decision.estimate.orientation == -0.7
    assert decision.estimate.position_index == 1
