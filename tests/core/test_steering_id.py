"""Steering identifier tests (Sec. 3.6.2)."""

import numpy as np
import pytest

from repro.core.steering_id import SteeringIdentifier
from repro.dsp.series import TimeSeries


def imu_series(rates, rate_hz=100.0):
    times = np.arange(len(rates)) / rate_hz
    return TimeSeries(times, np.asarray(rates, dtype=float))


def test_straight_driving_not_steering():
    rng = np.random.default_rng(0)
    imu = imu_series(rng.normal(0, 0.01, 500))
    identifier = SteeringIdentifier(rate_threshold=0.06)
    assert not identifier.is_steering(imu, 3.0)


def test_turn_detected():
    rates = np.concatenate([np.zeros(200), np.full(200, 0.3), np.zeros(100)])
    imu = imu_series(rates)
    identifier = SteeringIdentifier(rate_threshold=0.06)
    assert identifier.is_steering(imu, 3.0)  # mid-turn
    assert not identifier.is_steering(imu, 1.5)  # before the turn


def test_holdoff_extends_detection():
    rates = np.concatenate([np.full(200, 0.3), np.zeros(300)])
    imu = imu_series(rates)
    with_holdoff = SteeringIdentifier(rate_threshold=0.06, holdoff_s=0.5)
    without = SteeringIdentifier(rate_threshold=0.06, holdoff_s=0.0)
    t_after = 2.0 + 0.4  # 0.4 s after the yaw rate decayed
    assert with_holdoff.is_steering(imu, t_after)
    assert not without.is_steering(imu, t_after)


def test_vibration_jitter_below_threshold():
    rng = np.random.default_rng(1)
    imu = imu_series(rng.normal(0, 0.02, 1000))
    identifier = SteeringIdentifier(rate_threshold=0.06, smooth_window_s=0.25)
    mask = identifier.steering_mask(imu, np.linspace(1.0, 9.0, 50))
    assert mask.sum() == 0


def test_no_imu_data_defaults_to_not_steering():
    identifier = SteeringIdentifier()
    empty = TimeSeries.empty()
    assert not identifier.is_steering(empty, 1.0)
    assert identifier.smoothed_rate(empty, 1.0) == 0.0


def test_negative_rates_detected_by_magnitude():
    imu = imu_series(np.full(300, -0.3))
    identifier = SteeringIdentifier(rate_threshold=0.06)
    assert identifier.is_steering(imu, 2.0)


def test_validation():
    with pytest.raises(ValueError):
        SteeringIdentifier(rate_threshold=0.0)
    with pytest.raises(ValueError):
        SteeringIdentifier(holdoff_s=-1.0)
