"""ViHOT tracker pipeline tests on the simulated cabin."""

import numpy as np
import pytest

from repro.core import ViHOTConfig, ViHOTTracker
from repro.core.tracker import Estimate, TrackingResult
from repro.net.link import CsiStream


@pytest.fixture(scope="module")
def tracked(small_scenario, small_profile, runtime_stream):
    stream, scene = runtime_stream
    tracker = ViHOTTracker(small_profile, ViHOTConfig())
    result = tracker.process(stream, estimate_stride_s=0.1)
    return result, scene


def test_produces_estimates(tracked):
    result, _scene = tracked
    assert len(result) > 30


def test_tracks_head_orientation(tracked):
    result, scene = tracked
    truth = scene.driver_yaw(result.target_times)
    errors = np.abs(np.rad2deg(result.orientations - truth))
    active = result.target_times > 2.5
    assert np.median(errors[active]) < 10.0  # the paper's headline band


def test_facing_front_is_pinned(tracked):
    result, scene = tracked
    truth = np.abs(np.rad2deg(scene.driver_yaw(result.target_times)))
    est = np.abs(np.rad2deg(result.orientations))
    front = truth < 1.0
    assert np.median(est[front]) < 3.0


def test_modes_are_known(tracked):
    result, _scene = tracked
    assert set(result.modes) <= {"csi", "stationary", "held", "fallback", "init"}
    assert result.mode_fraction("csi") > 0.3


def test_estimates_time_ordered(tracked):
    result, _scene = tracked
    assert np.all(np.diff(result.times) > 0)
    np.testing.assert_allclose(result.target_times, result.times)  # horizon 0


def test_forecast_shifts_target_times(small_profile, runtime_stream):
    stream, _scene = runtime_stream
    tracker = ViHOTTracker(small_profile, ViHOTConfig(horizon_s=0.2))
    result = tracker.process(stream, estimate_stride_s=0.25)
    np.testing.assert_allclose(result.target_times - result.times, 0.2)


def test_jump_filter_bounds_rate(tracked):
    result, _scene = tracked
    rates = np.abs(np.diff(result.orientations) / np.diff(result.times))
    assert rates.max() <= np.deg2rad(400.0) * 1.05


def test_tracking_result_helpers():
    result = TrackingResult(
        [
            Estimate(0.0, 0.0, 0.1, "csi"),
            Estimate(0.1, 0.1, 0.2, "held"),
        ]
    )
    assert result.mode_fraction("csi") == pytest.approx(0.5)
    series = result.series()
    assert len(series) == 2
    assert TrackingResult().mode_fraction("csi") == 0.0


def test_invalid_stride(small_profile, runtime_stream):
    stream, _scene = runtime_stream
    tracker = ViHOTTracker(small_profile)
    with pytest.raises(ValueError):
        tracker.process(stream, estimate_stride_s=0.0)


def test_no_imu_means_no_fallback(small_profile, runtime_stream):
    stream, _scene = runtime_stream
    bare = CsiStream(stream.times, stream.csi, stream.seqs, imu=None)
    tracker = ViHOTTracker(small_profile)
    result = tracker.process(bare, estimate_stride_s=0.2)
    assert "fallback" not in result.modes
