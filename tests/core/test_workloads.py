"""The workload registry and the two non-head CSI workloads.

Occupant localization (CarFi-style seat fingerprinting) and breathing
sensing (V2iFi-style micro-motion spectral peak) ride the same stage
contract and :class:`OnlineTracker` plumbing as head tracking — these
tests check each engine recovers the ground truth its synthetic cabin
encodes, and that the registry refuses unknown names.
"""

import numpy as np
import pytest

from repro.core import ViHOTConfig
from repro.core.breathing import BREATHING_BAND_HZ, breathing_stages
from repro.core.localize import localization_stages
from repro.core.online import OnlineTracker
from repro.core.workloads import (
    HEAD_WORKLOAD,
    engine_for_workload,
    workload_kinds,
)
from repro.serve.loadgen import SyntheticCabin, synthetic_profile


@pytest.fixture(scope="module")
def profile():
    return synthetic_profile()


@pytest.fixture(scope="module")
def config():
    return ViHOTConfig(profile_stride=8, num_length_candidates=3)


def _replay(cabin, profile, config, workload):
    tracker = OnlineTracker(
        profile,
        buffer_s=10.0,
        engine=engine_for_workload(workload, profile, config),
    )
    estimates = []
    next_poll = 1.0
    for k in range(len(cabin)):
        t = float(cabin.times[k])
        tracker.push_csi(t, cabin.csi_at(k))
        if t >= next_poll:
            est = tracker.estimate(t)
            if est is not None:
                estimates.append(est)
            next_poll += 0.25
    return estimates


def test_registry_names(profile, config):
    kinds = workload_kinds()
    assert HEAD_WORKLOAD in kinds
    assert "localize" in kinds and "breathing" in kinds
    with pytest.raises(KeyError):
        engine_for_workload("tyre-pressure", profile, config)


def test_head_engine_is_the_default_chain(profile, config):
    head = engine_for_workload(HEAD_WORKLOAD, profile, config)
    assert head.stage_names == (
        "position", "steering", "stability_fix", "stationary",
        "match", "forecast", "jump_filter", "emit",
    )


def test_workload_engines_use_their_own_chains(profile, config):
    localize = engine_for_workload("localize", profile, config)
    breathing = engine_for_workload("breathing", profile, config)
    assert localize.stage_names == tuple(
        s.name for s in localization_stages(profile, config)
    )
    assert breathing.stage_names == tuple(
        s.name for s in breathing_stages(config)
    )


def test_localization_recovers_the_seat(profile, config):
    """A localize cabin parks an occupant on one of four seats; the
    SeatMatchStage must recover that index from the phase centroid."""
    for seed in (101, 202, 303):
        cabin = SyntheticCabin(
            f"loc-{seed}", seed=seed, duration_s=4.0, workload="localize"
        )
        estimates = _replay(cabin, profile, config, "localize")
        localized = [e for e in estimates if e.mode == "localized"]
        assert localized, f"seed {seed}: no localized estimates"
        seats = {e.position_index for e in localized}
        assert seats == {cabin.seat_index}, (
            f"seed {seed}: localized to {seats}, cabin seat is "
            f"{cabin.seat_index}"
        )


def test_breathing_recovers_the_rate(profile, config):
    """A breathing cabin oscillates at a hidden rate inside the
    respiratory band; the spectral peak must land within 0.05 Hz once
    the window is long enough to resolve it."""
    for seed in (11, 44):
        cabin = SyntheticCabin(
            f"br-{seed}", seed=seed, duration_s=10.0, workload="breathing"
        )
        estimates = _replay(cabin, profile, config, "breathing")
        breathing = [e for e in estimates if e.mode == "breathing"]
        assert breathing, f"seed {seed}: no breathing estimates"
        lo, hi = BREATHING_BAND_HZ
        assert all(lo <= e.orientation <= hi for e in breathing)
        # Late estimates see the longest window; they must converge.
        settled = breathing[len(breathing) // 2:]
        err = min(abs(e.orientation - cabin.breathing_rate_hz) for e in settled)
        assert err < 0.05, (
            f"seed {seed}: best settled estimate off by {err:.3f} Hz from "
            f"{cabin.breathing_rate_hz:.3f} Hz"
        )


def test_breathing_replay_is_deterministic(profile, config):
    cabin_a = SyntheticCabin("det", seed=7, duration_s=6.0, workload="breathing")
    cabin_b = SyntheticCabin("det", seed=7, duration_s=6.0, workload="breathing")
    assert all(
        np.array_equal(cabin_a.csi_at(k), cabin_b.csi_at(k))
        for k in range(len(cabin_a))
    )
    ests_a = _replay(cabin_a, profile, config, "breathing")
    ests_b = _replay(cabin_b, profile, config, "breathing")
    assert ests_a == ests_b
