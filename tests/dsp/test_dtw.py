"""DTW tests: metric properties, warping behaviour, batched equivalence."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dsp.dtw import (
    batched_dtw_distance,
    dtw_distance,
    dtw_path,
    stacked_dtw_distance,
)


def _full_table_batched_reference(query, candidates, band=None, metric="abs"):
    """The pre-refactor full-table DP, kept as the bit-identity reference
    for the two-diagonal implementation."""
    from repro.dsp.dtw import _pointwise_cost

    query = np.asarray(query, dtype=np.float64)
    candidates = np.asarray(candidates, dtype=np.float64)
    m = len(query)
    n_batch, length = candidates.shape
    cost = _pointwise_cost(query[None, :, None], candidates[:, None, :], metric)
    if band is not None:
        i_idx = np.arange(m)[:, None]
        j_idx = np.arange(length)[None, :]
        off_diag = np.abs(i_idx * (length / m) - j_idx)
        cost = np.where(off_diag[None] <= band, cost, np.inf)
    dp = np.full((n_batch, m + 1, length + 1), np.inf)
    dp[:, 0, 0] = 0.0
    for k in range(2, m + length + 1):
        i_lo = max(1, k - length)
        i_hi = min(m, k - 1)
        if i_lo > i_hi:
            continue
        i_arr = np.arange(i_lo, i_hi + 1)
        j_arr = k - i_arr
        step_cost = cost[:, i_arr - 1, j_arr - 1]
        best = np.minimum(
            dp[:, i_arr - 1, j_arr],
            np.minimum(dp[:, i_arr, j_arr - 1], dp[:, i_arr - 1, j_arr - 1]),
        )
        dp[:, i_arr, j_arr] = step_cost + best
    return dp[:, m, length] / (m + length)

series = st.lists(
    st.floats(min_value=-5, max_value=5, allow_nan=False), min_size=2, max_size=15
)


def test_identical_series_zero_distance():
    x = np.sin(np.linspace(0, 3, 30))
    assert dtw_distance(x, x) == pytest.approx(0.0, abs=1e-12)


@given(series, series)
@settings(max_examples=50, deadline=None)
def test_symmetry(a, b):
    a, b = np.array(a), np.array(b)
    assert dtw_distance(a, b) == pytest.approx(dtw_distance(b, a), rel=1e-9)


@given(series)
@settings(max_examples=50, deadline=None)
def test_nonnegative_and_self_zero(a):
    a = np.array(a)
    assert dtw_distance(a, a) == pytest.approx(0.0, abs=1e-12)
    assert dtw_distance(a, a + 1.0) > 0.0


def test_time_warp_invariance():
    # A stretched copy of the same shape matches much better than a
    # different shape of the same length.
    t = np.linspace(0, 1, 40)
    shape = np.sin(2 * np.pi * t)
    stretched = np.sin(2 * np.pi * np.linspace(0, 1, 80))
    other = np.cos(2 * np.pi * np.linspace(0, 1, 80))
    assert dtw_distance(shape, stretched) < 0.25 * dtw_distance(shape, other)


def test_band_constraint_inf_when_infeasible():
    a = np.zeros(10)
    b = np.concatenate([np.zeros(50), np.ones(50)])
    unconstrained = dtw_distance(a, b)
    assert np.isfinite(unconstrained)
    assert dtw_distance(a, b, band=0) >= unconstrained


def test_band_negative_rejected():
    with pytest.raises(ValueError):
        dtw_distance(np.zeros(3), np.zeros(3), band=-1)


def test_metric_circular_seam():
    # Two series on opposite sides of the +-pi seam are close circularly.
    a = np.full(10, np.pi - 0.05)
    b = np.full(10, -np.pi + 0.05)
    # 10 aligned pairs, each |wrap(a-b)| = 0.1, normalised by m+n = 20.
    assert dtw_distance(a, b, metric="circular") == pytest.approx(0.05, abs=1e-9)
    assert dtw_distance(a, b, metric="abs") > 2.0


def test_unknown_metric_rejected():
    with pytest.raises(ValueError):
        dtw_distance(np.zeros(3), np.zeros(3), metric="euclid")


def test_empty_series_rejected():
    with pytest.raises(ValueError):
        dtw_distance(np.array([]), np.zeros(3))


def test_path_endpoints_and_monotonicity():
    a = np.sin(np.linspace(0, 2, 20))
    b = np.sin(np.linspace(0, 2, 33))
    dist, path = dtw_path(a, b)
    assert path[0] == (0, 0)
    assert path[-1] == (len(a) - 1, len(b) - 1)
    steps = np.diff(np.array(path), axis=0)
    assert np.all(steps >= 0) and np.all(steps <= 1)
    assert dist == pytest.approx(dtw_distance(a, b), rel=1e-9)


@given(series, st.lists(series, min_size=1, max_size=4))
@settings(max_examples=30, deadline=None)
def test_batched_matches_single(query, candidate_lists):
    query = np.array(query)
    length = min(len(c) for c in candidate_lists)
    candidates = np.array([c[:length] for c in candidate_lists])
    batched = batched_dtw_distance(query, candidates)
    singles = np.array([dtw_distance(query, c) for c in candidates])
    np.testing.assert_allclose(batched, singles, rtol=1e-9, atol=1e-12)


def test_batched_circular_matches_single():
    rng = np.random.default_rng(3)
    query = rng.uniform(-np.pi, np.pi, 12)
    candidates = rng.uniform(-np.pi, np.pi, (5, 20))
    batched = batched_dtw_distance(query, candidates, metric="circular")
    singles = [dtw_distance(query, c, metric="circular") for c in candidates]
    np.testing.assert_allclose(batched, singles, rtol=1e-9)


def test_batched_shape_validation():
    with pytest.raises(ValueError):
        batched_dtw_distance(np.zeros(3), np.zeros((2, 0)))
    assert len(batched_dtw_distance(np.zeros(3), np.zeros((0, 5)))) == 0


# ----------------------------------------------------------------------
# Two-diagonal DP refactor: bit-identity against the full-table DP
# ----------------------------------------------------------------------
@pytest.mark.parametrize("band", [None, 0, 3, 10])
@pytest.mark.parametrize("metric", ["abs", "circular"])
def test_two_diagonal_dp_bit_identical_to_full_table(band, metric):
    rng = np.random.default_rng(7)
    query = rng.uniform(-np.pi, np.pi, 13)
    candidates = rng.uniform(-np.pi, np.pi, (9, 21))
    got = batched_dtw_distance(query, candidates, band=band, metric=metric)
    want = _full_table_batched_reference(query, candidates, band=band, metric=metric)
    np.testing.assert_array_equal(got, want)


def test_two_diagonal_dp_degenerate_shapes():
    # 1x1 and 1xL tables exercise the diagonal bookkeeping edges.
    assert batched_dtw_distance(
        np.array([1.0]), np.array([[3.0]])
    ) == pytest.approx(1.0)
    got = batched_dtw_distance(np.array([0.5]), np.array([[0.5, 1.5, 0.5]]))
    want = _full_table_batched_reference(np.array([0.5]), np.array([[0.5, 1.5, 0.5]]))
    np.testing.assert_array_equal(got, want)


# ----------------------------------------------------------------------
# Stacked multi-query kernel (the fleet-batching form)
# ----------------------------------------------------------------------
@pytest.mark.parametrize("band", [None, 4])
@pytest.mark.parametrize("metric", ["abs", "circular"])
def test_stacked_bit_identical_to_batched_loop(band, metric):
    rng = np.random.default_rng(11)
    queries = rng.uniform(-np.pi, np.pi, (6, 12))
    banks = rng.uniform(-np.pi, np.pi, (6, 17, 25))
    got = stacked_dtw_distance(queries, banks, band=band, metric=metric)
    want = np.stack(
        [
            batched_dtw_distance(queries[s], banks[s], band=band, metric=metric)
            for s in range(len(queries))
        ]
    )
    np.testing.assert_array_equal(got, want)


def test_stacked_shared_bank_bit_identical():
    # One (B, L) bank shared by every query — the cached-profile case.
    rng = np.random.default_rng(12)
    queries = rng.uniform(-np.pi, np.pi, (5, 10))
    bank = rng.uniform(-np.pi, np.pi, (8, 14))
    got = stacked_dtw_distance(queries, bank, metric="circular")
    want = np.stack(
        [
            batched_dtw_distance(queries[s], bank, metric="circular")
            for s in range(len(queries))
        ]
    )
    np.testing.assert_array_equal(got, want)


def test_stacked_single_query_matches_batched():
    rng = np.random.default_rng(13)
    query = rng.uniform(-1, 1, 9)
    bank = rng.uniform(-1, 1, (4, 9))
    np.testing.assert_array_equal(
        stacked_dtw_distance(query[None, :], bank)[0],
        batched_dtw_distance(query, bank),
    )


def test_stacked_shape_validation():
    with pytest.raises(ValueError):
        stacked_dtw_distance(np.zeros((2, 0)), np.zeros((3, 4)))
    with pytest.raises(ValueError):
        stacked_dtw_distance(np.zeros((2, 5)), np.zeros((3, 4, 6)))  # S mismatch
    with pytest.raises(ValueError):
        stacked_dtw_distance(np.zeros((2, 5)), np.zeros((3, 0)))
    with pytest.raises(ValueError):
        stacked_dtw_distance(np.zeros((2, 5)), np.zeros(7))
    with pytest.raises(ValueError):
        stacked_dtw_distance(np.zeros((2, 5)), np.zeros((2, 3, 4)), band=-1)
    assert stacked_dtw_distance(np.zeros((0, 5)), np.zeros((3, 4))).shape == (0, 3)
    assert stacked_dtw_distance(np.zeros((2, 5)), np.zeros((0, 4))).shape == (2, 0)


def test_stacked_degenerate_axis_sizes():
    """Every axis of the (S, m) x (S, B, L) contract survives size 1."""
    rng = np.random.default_rng(29)
    # S=1: one session stacked is exactly the batched kernel.
    query = rng.uniform(-1, 1, 7)
    bank = rng.uniform(-1, 1, (5, 8))
    np.testing.assert_array_equal(
        stacked_dtw_distance(query[None, :], bank[None, :, :])[0],
        batched_dtw_distance(query, bank),
    )
    # B=1: a single-candidate bank gives one column per session.
    queries = rng.uniform(-1, 1, (3, 7))
    single = rng.uniform(-1, 1, (1, 8))
    out = stacked_dtw_distance(queries, single)
    assert out.shape == (3, 1)
    for s in range(3):
        np.testing.assert_array_equal(
            out[s], batched_dtw_distance(queries[s], single)
        )
    # m=1: a one-sample query warps onto every candidate sample.
    ones = rng.uniform(-1, 1, (2, 1))
    out = stacked_dtw_distance(ones, bank)
    assert out.shape == (2, 5)
    for s in range(2):
        np.testing.assert_array_equal(
            out[s], batched_dtw_distance(ones[s], bank)
        )
    # L=1 for completeness: candidates of a single sample each.
    thin = rng.uniform(-1, 1, (4, 1))
    out = stacked_dtw_distance(queries, thin)
    assert out.shape == (3, 4)


def test_stacked_ragged_bank_rejected():
    """A ragged candidate bank cannot form the (B, L) tensor: the kernel
    must refuse it loudly rather than let numpy build an object array."""
    ragged = [[0.0, 1.0, 2.0], [3.0, 4.0]]
    with pytest.raises((ValueError, TypeError)):
        stacked_dtw_distance(np.zeros((2, 3)), ragged)
    with pytest.raises((ValueError, TypeError)):
        batched_dtw_distance(np.zeros(3), ragged)
