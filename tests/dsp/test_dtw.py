"""DTW tests: metric properties, warping behaviour, batched equivalence."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dsp.dtw import batched_dtw_distance, dtw_distance, dtw_path

series = st.lists(
    st.floats(min_value=-5, max_value=5, allow_nan=False), min_size=2, max_size=15
)


def test_identical_series_zero_distance():
    x = np.sin(np.linspace(0, 3, 30))
    assert dtw_distance(x, x) == pytest.approx(0.0, abs=1e-12)


@given(series, series)
@settings(max_examples=50, deadline=None)
def test_symmetry(a, b):
    a, b = np.array(a), np.array(b)
    assert dtw_distance(a, b) == pytest.approx(dtw_distance(b, a), rel=1e-9)


@given(series)
@settings(max_examples=50, deadline=None)
def test_nonnegative_and_self_zero(a):
    a = np.array(a)
    assert dtw_distance(a, a) == pytest.approx(0.0, abs=1e-12)
    assert dtw_distance(a, a + 1.0) > 0.0


def test_time_warp_invariance():
    # A stretched copy of the same shape matches much better than a
    # different shape of the same length.
    t = np.linspace(0, 1, 40)
    shape = np.sin(2 * np.pi * t)
    stretched = np.sin(2 * np.pi * np.linspace(0, 1, 80))
    other = np.cos(2 * np.pi * np.linspace(0, 1, 80))
    assert dtw_distance(shape, stretched) < 0.25 * dtw_distance(shape, other)


def test_band_constraint_inf_when_infeasible():
    a = np.zeros(10)
    b = np.concatenate([np.zeros(50), np.ones(50)])
    unconstrained = dtw_distance(a, b)
    assert np.isfinite(unconstrained)
    assert dtw_distance(a, b, band=0) >= unconstrained


def test_band_negative_rejected():
    with pytest.raises(ValueError):
        dtw_distance(np.zeros(3), np.zeros(3), band=-1)


def test_metric_circular_seam():
    # Two series on opposite sides of the +-pi seam are close circularly.
    a = np.full(10, np.pi - 0.05)
    b = np.full(10, -np.pi + 0.05)
    # 10 aligned pairs, each |wrap(a-b)| = 0.1, normalised by m+n = 20.
    assert dtw_distance(a, b, metric="circular") == pytest.approx(0.05, abs=1e-9)
    assert dtw_distance(a, b, metric="abs") > 2.0


def test_unknown_metric_rejected():
    with pytest.raises(ValueError):
        dtw_distance(np.zeros(3), np.zeros(3), metric="euclid")


def test_empty_series_rejected():
    with pytest.raises(ValueError):
        dtw_distance(np.array([]), np.zeros(3))


def test_path_endpoints_and_monotonicity():
    a = np.sin(np.linspace(0, 2, 20))
    b = np.sin(np.linspace(0, 2, 33))
    dist, path = dtw_path(a, b)
    assert path[0] == (0, 0)
    assert path[-1] == (len(a) - 1, len(b) - 1)
    steps = np.diff(np.array(path), axis=0)
    assert np.all(steps >= 0) and np.all(steps <= 1)
    assert dist == pytest.approx(dtw_distance(a, b), rel=1e-9)


@given(series, st.lists(series, min_size=1, max_size=4))
@settings(max_examples=30, deadline=None)
def test_batched_matches_single(query, candidate_lists):
    query = np.array(query)
    length = min(len(c) for c in candidate_lists)
    candidates = np.array([c[:length] for c in candidate_lists])
    batched = batched_dtw_distance(query, candidates)
    singles = np.array([dtw_distance(query, c) for c in candidates])
    np.testing.assert_allclose(batched, singles, rtol=1e-9, atol=1e-12)


def test_batched_circular_matches_single():
    rng = np.random.default_rng(3)
    query = rng.uniform(-np.pi, np.pi, 12)
    candidates = rng.uniform(-np.pi, np.pi, (5, 20))
    batched = batched_dtw_distance(query, candidates, metric="circular")
    singles = [dtw_distance(query, c, metric="circular") for c in candidates]
    np.testing.assert_allclose(batched, singles, rtol=1e-9)


def test_batched_shape_validation():
    with pytest.raises(ValueError):
        batched_dtw_distance(np.zeros(3), np.zeros((2, 0)))
    assert len(batched_dtw_distance(np.zeros(3), np.zeros((0, 5)))) == 0
