"""Filter tests: moving average, median, Hampel outlier rejection."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dsp.filters import hampel_filter, median_filter, moving_average

signal = st.lists(
    st.floats(min_value=-100, max_value=100, allow_nan=False), min_size=1, max_size=50
)


def test_moving_average_constant_invariant():
    x = np.full(20, 3.5)
    np.testing.assert_allclose(moving_average(x, 5), x)


def test_moving_average_output_length():
    x = np.arange(10.0)
    assert len(moving_average(x, 4)) == 10


def test_moving_average_window_one_identity():
    x = np.random.default_rng(0).normal(size=10)
    np.testing.assert_allclose(moving_average(x, 1), x)


def test_moving_average_smooths():
    rng = np.random.default_rng(0)
    x = rng.normal(size=500)
    assert np.std(moving_average(x, 9)) < 0.6 * np.std(x)


@given(signal)
@settings(max_examples=40, deadline=None)
def test_moving_average_bounded_by_extremes(values):
    x = np.array(values)
    y = moving_average(x, 5)
    assert np.all(y >= x.min() - 1e-9)
    assert np.all(y <= x.max() + 1e-9)


def test_median_filter_removes_spike():
    x = np.zeros(21)
    x[10] = 100.0
    y = median_filter(x, 5)
    assert y[10] == 0.0


def test_median_filter_validation():
    with pytest.raises(ValueError):
        median_filter(np.zeros(5), 0)


def test_hampel_replaces_outlier():
    rng = np.random.default_rng(1)
    x = rng.normal(0, 0.1, 50)
    x[25] = 10.0
    y = hampel_filter(x, window=7, n_sigmas=3.0)
    assert abs(y[25]) < 1.0
    # Inliers untouched
    assert np.sum(y != x) <= 3


def test_hampel_constant_window_flattens_deviation():
    x = np.zeros(20)
    x[10] = 0.5
    y = hampel_filter(x, window=5)
    assert y[10] == 0.0


def test_hampel_validation():
    with pytest.raises(ValueError):
        hampel_filter(np.zeros(5), window=2)
    with pytest.raises(ValueError):
        hampel_filter(np.zeros(5), n_sigmas=0.0)


def test_filters_reject_2d():
    with pytest.raises(ValueError):
        moving_average(np.zeros((2, 2)), 3)
