"""Circular phase arithmetic tests (with hypothesis invariants)."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.dsp.phase import (
    circular_mean,
    phase_difference,
    phase_std,
    stacked_phase_std,
    unwrap_phase,
    wrap_phase,
)

angles = st.floats(min_value=-50.0, max_value=50.0, allow_nan=False)


@given(angles)
def test_wrap_phase_in_range(a):
    w = wrap_phase(a)
    assert -np.pi < w <= np.pi


@given(angles, st.integers(min_value=-5, max_value=5))
def test_wrap_phase_2pi_periodic(a, k):
    assert wrap_phase(a) == pytest.approx(wrap_phase(a + 2 * np.pi * k), abs=1e-9)


def test_wrap_phase_seam_maps_to_positive_pi():
    # The seam itself belongs to the +pi side of (-pi, pi].
    assert wrap_phase(-np.pi) == np.pi
    assert wrap_phase(np.pi) == np.pi
    assert wrap_phase(3 * np.pi) == np.pi
    assert wrap_phase(-3 * np.pi) == np.pi


def test_wrap_phase_seam_is_ulp_tolerant():
    # Values a few ulps from -pi (np.mod rounding near odd multiples of
    # pi lands there) must also map to +pi, not leak out as ~-pi.
    for bad in (
        -np.pi + np.spacing(np.pi),
        -np.pi + 2 * np.spacing(np.pi),
        np.nextafter(-np.pi, 0.0),
    ):
        w = wrap_phase(bad)
        assert w == np.pi, f"wrap_phase({bad!r}) -> {w!r}"
    # Odd multiples of pi stress the mod rounding directly.
    for k in (3, 5, 9, 101, -7, -101):
        w = wrap_phase(k * np.pi)
        assert -np.pi < w <= np.pi
        assert abs(w) == pytest.approx(np.pi, abs=1e-9)


def test_wrap_phase_just_inside_seam_unchanged():
    # A value clearly inside the interval (many ulps from the seam) must
    # NOT be snapped to +pi.
    inside = -np.pi + 1e-9
    assert wrap_phase(inside) == pytest.approx(inside)
    assert wrap_phase(inside) != np.pi


def test_wrap_phase_vectorised_seam():
    values = np.array([-np.pi, np.pi, 0.0, np.nextafter(-np.pi, 0.0)])
    wrapped = wrap_phase(values)
    np.testing.assert_array_equal(wrapped[[0, 1, 3]], np.pi)
    assert wrapped[2] == 0.0


def test_circular_mean_simple():
    assert circular_mean(np.array([0.1, -0.1])) == pytest.approx(0.0, abs=1e-12)


def test_circular_mean_across_seam():
    # Naive mean of [pi-0.1, -pi+0.1] is 0; circular mean is pi.
    m = circular_mean(np.array([np.pi - 0.1, -np.pi + 0.1]))
    assert abs(wrap_phase(m - np.pi)) < 1e-9


def test_circular_mean_axis():
    phases = np.array([[0.0, 0.2], [np.pi, np.pi - 0.2]])
    m = circular_mean(phases, axis=1)
    assert m[0] == pytest.approx(0.1)
    assert abs(wrap_phase(m[1] - (np.pi - 0.1))) < 1e-9


@given(st.lists(angles, min_size=1, max_size=20), angles)
def test_circular_mean_rotation_equivariant(values, shift):
    values = np.array(values)
    m0 = circular_mean(values)
    m1 = circular_mean(values + shift)
    assert abs(wrap_phase(m1 - m0 - shift)) < 1e-6


def test_phase_difference_wraps():
    d = phase_difference(np.pi - 0.05, -np.pi + 0.05)
    assert d == pytest.approx(-0.1, abs=1e-9)


def test_unwrap_phase_linear_track():
    track = np.linspace(0, 6 * np.pi, 200)
    recovered = unwrap_phase(wrap_phase(track))
    np.testing.assert_allclose(np.diff(recovered), np.diff(track), atol=1e-9)


def test_unwrap_rejects_2d():
    with pytest.raises(ValueError):
        unwrap_phase(np.zeros((2, 2)))


def test_phase_std_constant_zero():
    assert phase_std(np.full(10, 1.3)) == pytest.approx(0.0, abs=1e-6)


def test_phase_std_grows_with_spread():
    rng = np.random.default_rng(0)
    narrow = phase_std(rng.normal(0, 0.05, 500))
    wide = phase_std(rng.normal(0, 0.5, 500))
    assert narrow < wide
    assert narrow == pytest.approx(0.05, rel=0.2)


def test_phase_std_uniform_is_large():
    uniform = np.linspace(-np.pi, np.pi, 1000, endpoint=False)
    assert phase_std(uniform) > 2.0


def test_phase_std_empty_raises():
    with pytest.raises(ValueError):
        phase_std(np.array([]))


def test_stacked_phase_std_bit_identical_to_scalar():
    """The stacked kernel must be bit-identical to per-row phase_std —
    the (S, m) row mean is the same pairwise summation as a 1-D mean."""
    rng = np.random.default_rng(7)
    for m in (5, 17, 64, 257):
        rows = rng.uniform(-np.pi, np.pi, (9, m))
        stacked = stacked_phase_std(rows)
        scalar = np.array([phase_std(row) for row in rows])
        np.testing.assert_array_equal(stacked, scalar)


def test_stacked_phase_std_degenerate_rows():
    """Constant and circle-uniform rows hit the clamp and the resultant
    floor exactly as the scalar path does."""
    n = 360
    uniform = np.linspace(-np.pi, np.pi, n, endpoint=False)
    rows = np.stack([np.full(n, 1.3), uniform, np.zeros(n)])
    stacked = stacked_phase_std(rows)
    scalar = np.array([phase_std(row) for row in rows])
    np.testing.assert_array_equal(stacked, scalar)
    assert stacked[0] == 0.0
    assert stacked[2] == 0.0


def test_stacked_phase_std_floor_matches_scalar():
    # A perfectly balanced pair has resultant ~0 -> both paths floor at
    # sqrt(-2 ln 1e-12).
    rows = np.array([[0.0, np.pi], [0.25, 0.25 + np.pi]])
    stacked = stacked_phase_std(rows)
    scalar = np.array([phase_std(row) for row in rows])
    np.testing.assert_array_equal(stacked, scalar)
    np.testing.assert_allclose(stacked, np.sqrt(-2.0 * np.log(1e-12)))


def test_stacked_phase_std_validation():
    with pytest.raises(ValueError):
        stacked_phase_std(np.zeros(5))
    with pytest.raises(ValueError):
        stacked_phase_std(np.zeros((3, 0)))
