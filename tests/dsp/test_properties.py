"""Cross-cutting property-based tests on the DSP substrate."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dsp.dtw import dtw_distance
from repro.dsp.phase import wrap_phase
from repro.dsp.resample import resample_uniform
from repro.dsp.series import TimeSeries


@st.composite
def irregular_series(draw, min_len=4, max_len=60):
    n = draw(st.integers(min_value=min_len, max_value=max_len))
    gaps = draw(
        st.lists(
            st.floats(min_value=1e-3, max_value=0.5, allow_nan=False),
            min_size=n,
            max_size=n,
        )
    )
    times = np.cumsum(gaps)
    values = draw(
        st.lists(
            st.floats(min_value=-10, max_value=10, allow_nan=False),
            min_size=n,
            max_size=n,
        )
    )
    return TimeSeries(times, np.array(values))


@given(irregular_series())
@settings(max_examples=40, deadline=None)
def test_resample_stays_within_value_bounds(series):
    resampled = resample_uniform(series, rate_hz=37.0)
    values = np.asarray(series.values)
    assert np.all(np.asarray(resampled.values) >= values.min() - 1e-9)
    assert np.all(np.asarray(resampled.values) <= values.max() + 1e-9)


@given(irregular_series())
@settings(max_examples=40, deadline=None)
def test_resample_grid_covers_span(series):
    resampled = resample_uniform(series, rate_hz=50.0)
    assert resampled.start >= series.start - 1e-9
    assert resampled.end <= series.end + 1e-9
    diffs = np.diff(resampled.times)
    if len(diffs):
        np.testing.assert_allclose(diffs, 1.0 / 50.0, atol=1e-9)


@given(irregular_series(), st.floats(min_value=0.0, max_value=5.0, allow_nan=False))
@settings(max_examples=40, deadline=None)
def test_slice_then_slice_idempotent(series, t0):
    t1 = t0 + 1.0
    once = series.slice(t0, t1)
    twice = once.slice(t0, t1)
    assert len(once) == len(twice)


@given(
    st.lists(st.floats(min_value=-3, max_value=3, allow_nan=False), min_size=3, max_size=20),
    st.floats(min_value=-3, max_value=3, allow_nan=False),
)
@settings(max_examples=40, deadline=None)
def test_dtw_circular_rotation_invariant(values, shift):
    """Rotating both series by the same angle preserves circular DTW."""
    a = wrap_phase(np.array(values))
    b = wrap_phase(np.array(values[::-1]))
    d0 = dtw_distance(a, b, metric="circular")
    d1 = dtw_distance(wrap_phase(a + shift), wrap_phase(b + shift), metric="circular")
    assert abs(d0 - d1) < 1e-6


@given(st.lists(st.floats(min_value=-3, max_value=3, allow_nan=False), min_size=3, max_size=20))
@settings(max_examples=40, deadline=None)
def test_dtw_insensitive_to_repeats(values):
    """Repeating samples (time warping) keeps DTW distance near zero."""
    a = np.array(values)
    stretched = np.repeat(a, 2)
    assert dtw_distance(a, stretched) < 1e-9
