"""Resampling tests."""

import numpy as np
import pytest

from repro.dsp.resample import largest_gap, mean_rate, resample_uniform
from repro.dsp.series import TimeSeries


def irregular_series(rng, duration=2.0, rate=300.0):
    gaps = rng.exponential(1.0 / rate, int(duration * rate * 2))
    times = np.cumsum(gaps)
    times = times[times < duration]
    return TimeSeries(times, np.sin(2 * np.pi * times))


def test_uniform_grid_spacing(rng):
    s = irregular_series(rng)
    u = resample_uniform(s, 100.0)
    np.testing.assert_allclose(np.diff(u.times), 0.01, atol=1e-12)


def test_resample_preserves_signal(rng):
    s = irregular_series(rng)
    u = resample_uniform(s, 200.0)
    np.testing.assert_allclose(
        np.asarray(u.values), np.sin(2 * np.pi * u.times), atol=0.01
    )


def test_resample_explicit_span():
    s = TimeSeries(np.array([0.0, 1.0, 2.0]), np.array([0.0, 1.0, 2.0]))
    u = resample_uniform(s, 10.0, t_start=0.5, t_end=1.5)
    assert u.start == pytest.approx(0.5)
    assert u.end == pytest.approx(1.5)


def test_resample_validation():
    s = TimeSeries(np.array([0.0, 1.0]), np.array([0.0, 1.0]))
    with pytest.raises(ValueError):
        resample_uniform(s, -1.0)
    with pytest.raises(ValueError):
        resample_uniform(s, 10.0, t_start=1.0, t_end=0.5)
    with pytest.raises(ValueError):
        resample_uniform(TimeSeries(np.array([0.0]), np.array([0.0])), 10.0)


def test_largest_gap():
    s = TimeSeries(np.array([0.0, 0.1, 0.5, 0.6]), np.zeros(4))
    assert largest_gap(s) == pytest.approx(0.4)
    assert largest_gap(TimeSeries.empty()) == 0.0


def test_mean_rate():
    s = TimeSeries(np.linspace(0, 1, 101), np.zeros(101))
    assert mean_rate(s) == pytest.approx(100.0)
    assert mean_rate(TimeSeries.empty()) == 0.0
