"""TimeSeries container tests."""

import numpy as np
import pytest

from repro.dsp.series import TimeSeries


def make(times, values=None):
    times = np.asarray(times, dtype=float)
    if values is None:
        values = np.arange(len(times), dtype=float)
    return TimeSeries(times, values)


def test_validation_length_mismatch():
    with pytest.raises(ValueError):
        TimeSeries(np.array([0.0, 1.0]), np.array([1.0]))


def test_validation_monotonic():
    with pytest.raises(ValueError):
        TimeSeries(np.array([0.0, 0.0]), np.array([1.0, 2.0]))
    with pytest.raises(ValueError):
        TimeSeries(np.array([1.0, 0.5]), np.array([1.0, 2.0]))


def test_duration_and_bounds():
    s = make([1.0, 2.0, 4.0])
    assert s.duration == pytest.approx(3.0)
    assert s.start == 1.0
    assert s.end == 4.0
    assert len(s) == 3


def test_empty_series_properties():
    s = TimeSeries.empty()
    assert len(s) == 0
    assert s.duration == 0.0
    with pytest.raises(ValueError):
        _ = s.start


def test_slice_inclusive():
    s = make([0.0, 1.0, 2.0, 3.0])
    sliced = s.slice(1.0, 2.0)
    np.testing.assert_allclose(sliced.times, [1.0, 2.0])


def test_slice_empty_range():
    s = make([0.0, 1.0, 2.0])
    assert len(s.slice(0.4, 0.6)) == 0
    with pytest.raises(ValueError):
        s.slice(2.0, 1.0)


def test_before_strict():
    s = make([0.0, 1.0, 2.0])
    assert len(s.before(1.0)) == 1
    assert len(s.before(1.5)) == 2


def test_interp_scalar_values():
    s = TimeSeries(np.array([0.0, 1.0]), np.array([0.0, 10.0]))
    np.testing.assert_allclose(s.interp(np.array([0.5])), [5.0])
    assert s.value_at(0.25) == pytest.approx(2.5)


def test_interp_vector_values():
    s = TimeSeries(np.array([0.0, 1.0]), np.array([[0.0, 0.0], [2.0, 4.0]]))
    np.testing.assert_allclose(s.interp(np.array([0.5])), [[1.0, 2.0]])


def test_interp_clamps_at_ends():
    s = TimeSeries(np.array([0.0, 1.0]), np.array([1.0, 2.0]))
    assert s.value_at(-1.0) == pytest.approx(1.0)
    assert s.value_at(5.0) == pytest.approx(2.0)


def test_interp_empty_raises():
    with pytest.raises(ValueError):
        TimeSeries.empty().interp(np.array([0.0]))


def test_map_keeps_times():
    s = make([0.0, 1.0])
    doubled = s.map(lambda v: v * 2)
    np.testing.assert_allclose(doubled.times, s.times)
    np.testing.assert_allclose(doubled.values, [0.0, 2.0])


def test_shift():
    s = make([0.0, 1.0])
    np.testing.assert_allclose(s.shift(2.5).times, [2.5, 3.5])


def test_concat_order_enforced():
    a = make([0.0, 1.0])
    b = make([2.0, 3.0])
    joined = a.concat(b)
    assert len(joined) == 4
    with pytest.raises(ValueError):
        b.concat(a)


def test_concat_with_empty():
    a = make([0.0, 1.0])
    assert a.concat(TimeSeries.empty()) is a
