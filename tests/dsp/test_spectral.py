"""Doppler analysis tests — validating the paper's Sec. 2.2 claim."""

import numpy as np
import pytest

from repro.dsp.spectral import (
    doppler_spectrum,
    doppler_spread,
    expected_head_doppler,
)


def synthetic_csi(freq_hz, duration=4.0, rate=500.0):
    """A single tap whose phasor rotates at ``freq_hz`` (pure Doppler)."""
    times = np.arange(0, duration, 1.0 / rate)
    tap = np.exp(2j * np.pi * freq_hz * times)
    csi = tap[:, None, None]
    return times, csi


def test_spectrum_peaks_at_doppler_frequency():
    times, csi = synthetic_csi(12.0)
    freqs, power = doppler_spectrum(times, csi, rate_hz=200.0)
    peak = freqs[int(np.argmax(power))]
    assert peak == pytest.approx(12.0, abs=1.0)


def test_spectrum_normalised():
    times, csi = synthetic_csi(5.0)
    _freqs, power = doppler_spectrum(times, csi)
    assert power.sum() == pytest.approx(1.0)


def test_static_channel_zero_spread():
    times = np.linspace(0, 2, 500)
    csi = np.full((500, 1, 1), 1.0 + 0.5j)
    freqs, power = doppler_spectrum(times, csi)
    # Static paths are removed: almost no residual energy anywhere.
    assert doppler_spread(freqs, power) < 30.0 or power.max() < 1e-6


def test_spread_of_known_tone():
    times, csi = synthetic_csi(20.0)
    freqs, power = doppler_spectrum(times, csi, rate_hz=200.0)
    # A pure tone at 20 Hz: spread is dominated by the centroid removal
    # leaving near-zero width around 20 Hz.
    centroid = float(np.sum(power * freqs))
    assert centroid == pytest.approx(20.0, abs=1.5)
    assert doppler_spread(freqs, power) < 5.0


def test_expected_head_doppler_magnitude():
    # 120 deg/s with a 9 cm lever arm at 2.4 GHz: ~3 Hz — tiny compared
    # to the 500 Hz sampling rate (the paper's "no motion blur" claim).
    f = expected_head_doppler(np.deg2rad(120.0))
    assert 1.0 < f < 10.0
    assert f < 0.02 * 500.0


def test_expected_head_doppler_scales():
    assert expected_head_doppler(2.0) == pytest.approx(
        2 * expected_head_doppler(1.0)
    )
    # 5 GHz halves the wavelength and doubles the Doppler.
    assert expected_head_doppler(1.0, wavelength_m=0.0615) == pytest.approx(
        2 * expected_head_doppler(1.0, wavelength_m=0.123)
    )


def test_simulated_head_turn_is_narrowband():
    """End-to-end: the cabin channel under head turning has a Doppler

    spread orders of magnitude below the sampling rate."""
    from repro.cabin import CabinScene
    from repro.cabin.driver import scan_trajectory, HeadPositionModel
    from repro.rf import ChannelSimulator, Spectrum

    scene = CabinScene(
        driver_yaw_trajectory=scan_trajectory(
            6.0, speed_rad_s=np.deg2rad(120.0)
        ),
        driver_positions=HeadPositionModel(sway_std_m=0.0),
        micromotions=[],
    )
    times = np.arange(0, 6, 0.002)
    csi = ChannelSimulator(scene, Spectrum()).clean_csi(times)
    freqs, power = doppler_spectrum(times, csi, rate_hz=200.0)
    spread = doppler_spread(freqs, power)
    assert spread < 30.0  # Hz, vs 500 Hz sampling: no motion blur


def test_validation():
    with pytest.raises(ValueError):
        doppler_spectrum(np.zeros(4), np.zeros((4, 1, 1), dtype=complex))
    with pytest.raises(ValueError):
        doppler_spread(np.zeros(4), np.zeros(5))
    with pytest.raises(ValueError):
        expected_head_doppler(-1.0)
