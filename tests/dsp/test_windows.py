"""Sliding-window helper tests."""

import numpy as np
import pytest

from repro.dsp.windows import iter_estimate_times, sliding_windows, window_slice


def test_sliding_windows_contents():
    x = np.arange(6.0)
    w = sliding_windows(x, 3, stride=1)
    assert w.shape == (4, 3)
    np.testing.assert_allclose(w[0], [0, 1, 2])
    np.testing.assert_allclose(w[-1], [3, 4, 5])


def test_sliding_windows_stride():
    x = np.arange(10.0)
    w = sliding_windows(x, 4, stride=3)
    assert w.shape == (3, 4)
    np.testing.assert_allclose(w[:, 0], [0, 3, 6])


def test_sliding_windows_is_view():
    x = np.arange(5.0)
    w = sliding_windows(x, 2)
    assert not w.flags.writeable
    assert w.base is not None


def test_sliding_windows_validation():
    with pytest.raises(ValueError):
        sliding_windows(np.arange(3.0), 5)
    with pytest.raises(ValueError):
        sliding_windows(np.arange(3.0), 0)
    with pytest.raises(ValueError):
        sliding_windows(np.zeros((2, 2)), 1)


def test_window_slice_covers_span():
    times = np.linspace(0, 1, 11)
    lo, hi = window_slice(times, t_end=0.5, window_s=0.2)
    np.testing.assert_allclose(times[lo:hi], [0.3, 0.4, 0.5])


def test_window_slice_empty():
    times = np.array([0.0, 10.0])
    lo, hi = window_slice(times, t_end=5.0, window_s=1.0)
    assert lo == hi


def test_window_slice_validation():
    with pytest.raises(ValueError):
        window_slice(np.zeros(3), 1.0, -0.1)


def test_iter_estimate_times():
    ts = list(iter_estimate_times(0.0, 1.0, 0.25))
    np.testing.assert_allclose(ts, [0.0, 0.25, 0.5, 0.75, 1.0])
    with pytest.raises(ValueError):
        list(iter_estimate_times(0.0, 1.0, 0.0))
