"""CLI tests: every subcommand, end to end on temporary files."""

import pytest

from repro.cli import FIGURES, build_parser, main


def test_parser_requires_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_figure_registry_covers_all_paper_figures():
    expected = {
        "fig02", "fig03", "fig08", "fig10", "fig11", "fig12",
        "fig13a", "fig13b", "fig13c", "fig13d", "fig14", "fig15",
        "fig16", "fig17a", "fig17b", "fig17c", "fig17d", "sampling-rate",
    }
    assert expected <= set(FIGURES)


def test_simulate_profile_track_roundtrip(tmp_path, capsys):
    profile_path = tmp_path / "p.npz"
    capture_path = tmp_path / "c.npz"
    csv_path = tmp_path / "est.csv"

    assert main([
        "profile", "--seed", "5", "--duration", "6", "--preset", "parked",
        "-o", str(profile_path),
    ]) == 0
    assert profile_path.exists()

    assert main([
        "simulate-capture", "--seed", "5", "--duration", "6",
        "--preset", "parked", "-o", str(capture_path),
    ]) == 0
    assert capture_path.exists()

    assert main([
        "track", str(profile_path), str(capture_path), "-o", str(csv_path),
        "--stride", "100",
    ]) == 0
    lines = csv_path.read_text().splitlines()
    assert lines[0] == "time_s,target_time_s,orientation_deg,mode"
    assert len(lines) > 10
    out = capsys.readouterr().out
    assert "estimates" in out


def test_track_respects_horizon(tmp_path):
    profile_path = tmp_path / "p.npz"
    capture_path = tmp_path / "c.npz"
    csv_path = tmp_path / "est.csv"
    main(["profile", "--seed", "6", "--duration", "5", "--preset", "parked",
          "-o", str(profile_path)])
    main(["simulate-capture", "--seed", "6", "--duration", "5",
          "--preset", "parked", "-o", str(capture_path)])
    main(["track", str(profile_path), str(capture_path),
          "-o", str(csv_path), "--horizon", "200", "--stride", "200"])
    rows = [l.split(",") for l in csv_path.read_text().splitlines()[1:]]
    for row in rows:
        assert float(row[1]) == pytest.approx(float(row[0]) + 0.2, abs=1e-6)


def test_figure_command_fast(capsys):
    assert main(["figure", "sampling-rate"]) == 0
    out = capsys.readouterr().out
    assert "csi_rate_hz_clean" in out


def test_figure_command_series(capsys):
    assert main(["figure", "fig15"]) == 0
    out = capsys.readouterr().out
    assert "fig15" in out


def test_report_subset(tmp_path, capsys):
    report_path = tmp_path / "report.txt"
    assert main([
        "report", "--only", "sampling-rate", "ablation-sanitize",
        "-o", str(report_path),
    ]) == 0
    text = report_path.read_text()
    assert "sampling-rate" in text
    assert "ablation-sanitize" in text
