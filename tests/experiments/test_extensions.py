"""Extension experiment tests (fast smoke versions)."""

import numpy as np
import pytest

from repro.rf.spectrum import Spectrum


def test_5ghz_spectrum_factory():
    s5 = Spectrum.wifi_5ghz()
    s24 = Spectrum.wifi_2_4ghz()
    assert s5.carrier_hz > 2 * s24.carrier_hz
    assert s5.carrier_wavelength_m < 0.06
    assert s5.num_subcarriers == s24.num_subcarriers


def test_5ghz_phase_more_sensitive():
    """Shorter wavelength -> more phase change per path-length change."""
    from repro.rf.multipath import synthesize_csi

    lengths = np.array([[1.0], [1.01]])  # 1 cm of extra path
    amps = np.ones((2, 1))
    for spectrum, expected in ((Spectrum.wifi_2_4ghz(), 0.51), (Spectrum.wifi_5ghz(), 1.08)):
        csi = synthesize_csi(lengths, amps, spectrum.wavelengths_m[:1])
        dphi = abs(np.angle(csi[1, 0] * np.conj(csi[0, 0])))
        assert dphi == pytest.approx(expected, abs=0.06)
