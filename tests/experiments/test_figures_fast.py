"""Fast figure-function tests (series-producing figures only).

The campaign-level figures are exercised by the benchmarks and the
integration tests; here we check the cheap figures' qualitative shape.
"""

import numpy as np
import pytest

from repro.experiments import figures


def test_fig02_head_turns_in_yaw_plane():
    data = figures.fig02_head_plane(duration_s=10.0, seed=1)
    assert np.abs(data["yaw_deg"]).max() > 40.0
    # Pitch and roll projections stay small (Fig. 2's observation).
    assert np.abs(data["pitch_deg"]).max() < 0.3 * np.abs(data["yaw_deg"]).max()
    assert np.abs(data["roll_deg"]).max() < 0.3 * np.abs(data["yaw_deg"]).max()


def test_fig03_parallel_curves():
    data = figures.fig03_phase_curves(leans_m=(-0.02, 0.02), profile_seconds=5.0)
    assert set(data) == {-0.02, 0.02}
    # Phase at facing-front differs between positions: the curves are
    # parallel, not identical (the head-position sensitivity of Sec. 2.3).
    fronts = {}
    for lean, curves in data.items():
        mask = np.abs(curves["orientation_deg"]) < 3.0
        fronts[lean] = np.median(curves["phase_rad"][mask])
    assert abs(fronts[-0.02] - fronts[0.02]) > 0.02


def test_fig08_steering_moves_phase_without_head():
    data = figures.fig08_steering_phase(segment_s=4.0)
    boundary = data["segment_boundary_s"]
    head_segment = data["time_s"] < boundary
    wheel_segment = ~head_segment
    # During the wheel segment the head is still...
    assert np.ptp(data["head_yaw_deg"][wheel_segment]) < 2.0
    # ...but the phase still swings visibly (Fig. 8).
    wheel_phase_swing = np.ptp(data["phase_rad"][wheel_segment])
    assert wheel_phase_swing > 0.1
    assert np.abs(data["wheel_angle_deg"][wheel_segment]).max() > 90.0


def test_fig14_speed_compresses_curve():
    data = figures.fig14_speed_curves(speeds_deg_s=(60.0, 120.0), duration_s=5.0)
    # Faster turning -> more sweeps in the same time -> the smoothed
    # phase oscillates more often (noise is filtered out first).
    from repro.dsp.filters import moving_average

    def crossings(series):
        smooth = moving_average(np.asarray(series), 101)
        centered = smooth - np.median(smooth)
        return int(np.sum(np.diff(np.sign(centered)) != 0))

    slow = crossings(data[60.0]["phase_rad"])
    fast = crossings(data[120.0]["phase_rad"])
    assert fast > slow
    # Both speeds traverse the same curve: similar phase ranges.
    assert np.ptp(data[120.0]["phase_rad"]) == pytest.approx(
        np.ptp(data[60.0]["phase_rad"]), rel=0.6
    )


def test_fig15_micromotions_much_smaller_than_turning():
    data = figures.fig15_micromotions(duration_s=4.0)
    turning = data["head turning"]["phase_std_rad"]
    for label in ("breathing+blinking", "intense eye motion", "music vibration"):
        assert data[label]["phase_std_rad"] < 0.15 * turning


def test_fig16_vibration_adds_noise_keeps_shape():
    data = figures.fig16_vibration_phase(duration_s=4.0)
    rigid = data["rigid"]["phase_rad"]
    vibrating = data["vibrating"]["phase_rad"]
    # Same macroscopic range (parallel curves in Fig. 16)...
    assert np.ptp(vibrating) == pytest.approx(np.ptp(rigid), rel=0.5)
    # ...but noisier sample-to-sample.
    assert np.std(np.diff(vibrating)) > np.std(np.diff(rigid))


def test_fig11_layouts_have_different_curves():
    data = figures.fig11_layout_curves(profile_seconds=4.0)
    a = data["behind-driver"]
    b = data["center-console"]
    # Interpolate both phases onto a common orientation grid and compare.
    grid = np.linspace(-60, 60, 50)
    pa = np.interp(grid, a["orientation_deg"], a["phase_rad"])
    pb = np.interp(grid, b["orientation_deg"], b["phase_rad"])
    assert np.abs(pa - pb).max() > 0.1
    # Layout 1 has far more head-orientation dynamic range.
    assert np.ptp(pa) > 2.0 * np.ptp(pb)


def test_sampling_rate_claims():
    rates = figures.sampling_rate(duration_s=6.0)
    assert rates["csi_rate_hz_clean"] == pytest.approx(500.0, rel=0.15)
    assert rates["csi_rate_hz_interfered"] == pytest.approx(400.0, rel=0.2)
    assert rates["csi_rate_hz_interfered"] < rates["csi_rate_hz_clean"]
    assert rates["max_gap_ms_interfered"] > rates["max_gap_ms_clean"]
    assert rates["speedup_clean"] > 10.0  # the paper's ">10x camera" claim


def test_ablation_sanitization_shows_cancellation():
    data = figures.ablation_sanitization(duration_s=4.0)
    assert data["raw_phase_std_rad"] > 10.0 * data["sanitized_phase_std_rad"]
