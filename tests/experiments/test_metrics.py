"""Metric tests."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.tracker import Estimate, TrackingResult
from repro.experiments.metrics import (
    angular_errors_deg,
    error_cdf,
    summarize_errors,
)

errors_strategy = st.lists(
    st.floats(min_value=0.0, max_value=180.0, allow_nan=False),
    min_size=1,
    max_size=100,
)


def make_result(orientations):
    estimates = [
        Estimate(float(k) * 0.1, float(k) * 0.1, float(o), "csi")
        for k, o in enumerate(orientations)
    ]
    return TrackingResult(estimates)


def test_angular_errors_absolute_degrees():
    result = make_result([0.0, np.deg2rad(10.0)])
    truth = np.array([0.0, 0.0])
    err = angular_errors_deg(result, truth)
    np.testing.assert_allclose(err, [0.0, 10.0], atol=1e-9)


def test_angular_errors_shape_check():
    result = make_result([0.0, 0.1])
    with pytest.raises(ValueError):
        angular_errors_deg(result, np.zeros(3))


def test_cdf_monotone_and_normalised():
    errors = np.array([1.0, 5.0, 10.0, 30.0])
    grid, frac = error_cdf(errors)
    assert frac[0] == 0.0 or frac[0] >= 0.0
    assert np.all(np.diff(frac) >= 0)
    assert frac[-1] == pytest.approx(1.0)


def test_cdf_median_crossing():
    errors = np.linspace(0, 20, 100)
    grid, frac = error_cdf(errors)
    k = int(np.searchsorted(grid, 10.0))
    assert frac[k] == pytest.approx(0.5, abs=0.06)


def test_cdf_empty_rejected():
    with pytest.raises(ValueError):
        error_cdf(np.array([]))


@given(errors_strategy)
@settings(max_examples=40, deadline=None)
def test_summary_invariants(errors):
    errors = np.array(errors)
    s = summarize_errors(errors)
    assert 0.0 <= s.median_deg <= s.max_deg
    assert s.median_deg <= s.p90_deg + 1e-9 <= s.max_deg + 1e-9
    assert s.count == len(errors)
    assert s.mean_deg <= s.max_deg * (1 + 1e-12) + 1e-12


def test_summary_str_readable():
    s = summarize_errors(np.array([1.0, 2.0, 3.0]))
    text = str(s)
    assert "median" in text and "n=3" in text


def test_summary_empty_rejected():
    with pytest.raises(ValueError):
        summarize_errors(np.array([]))
