"""Preset and terminal-plot tests."""

import numpy as np
import pytest

from repro.experiments.plots import ascii_cdfs, ascii_series, sparkline
from repro.experiments.presets import PRESETS, preset_config, preset_scenario


def test_all_presets_build():
    for name in PRESETS:
        scenario = preset_scenario(name, seed=1, runtime_duration_s=5.0)
        assert scenario.config.runtime_duration_s == 5.0


def test_preset_unknown():
    with pytest.raises(ValueError):
        preset_config("moon")


def test_preset_overrides_win():
    config = preset_config("city", csma="clean")
    assert config.csma == "clean"
    assert config.steering == "turns"  # preset value kept


def test_presets_differ_meaningfully():
    campus = preset_config("campus")
    highway = preset_config("highway")
    parked = preset_config("parked")
    assert highway.vehicle_speed_mps > campus.vehicle_speed_mps
    assert parked.vibration_amplitude_m == 0.0
    assert campus.vibration_amplitude_m > 0.0


def test_parked_preset_is_still_car():
    scenario = preset_scenario("parked", seed=2, runtime_duration_s=5.0)
    scene = scenario.runtime_scene(0)
    np.testing.assert_allclose(scene.car_yaw_rate(np.linspace(0, 5, 20)), 0.0)


# ------------------------------------------------------------------ plots
def test_ascii_series_renders():
    x = np.linspace(0, 10, 100)
    chart = ascii_series(x, np.sin(x), title="sine")
    assert "sine" in chart
    assert chart.count("\n") >= 12
    assert "*" in chart


def test_ascii_series_constant_y():
    chart = ascii_series(np.arange(5.0), np.ones(5))
    assert "*" in chart


def test_ascii_series_validation():
    with pytest.raises(ValueError):
        ascii_series(np.arange(3.0), np.arange(4.0))
    with pytest.raises(ValueError):
        ascii_series(np.arange(3.0), np.arange(3.0), width=2)


def test_ascii_cdfs_renders():
    grid = np.arange(0.0, 61.0)
    curves = {
        "fast": (grid, np.clip(grid / 10.0, 0, 1)),
        "slow": (grid, np.clip(grid / 50.0, 0, 1)),
    }
    chart = ascii_cdfs(curves, title="cdf demo")
    assert "fast" in chart and "slow" in chart
    # The faster-concentrating arm saturates earlier: more dense fill.
    fast_line = [l for l in chart.splitlines() if "fast" in l][0]
    slow_line = [l for l in chart.splitlines() if "slow" in l][0]
    assert fast_line.count("@") > slow_line.count("@")


def test_sparkline_length_and_range():
    line = sparkline(np.sin(np.linspace(0, 6, 200)), width=30)
    assert len(line) == 30
    assert "█" in line and "▁" in line


def test_sparkline_validation():
    with pytest.raises(ValueError):
        sparkline([1.0])
