"""Runner and report tests."""

import numpy as np
import pytest

from repro.core import ViHOTConfig
from repro.experiments.metrics import summarize_errors
from repro.experiments.report import format_cdf_rows, format_summary_table
from repro.experiments.runner import (
    CampaignResult,
    run_campaign,
    run_tracking_session,
)


@pytest.fixture(scope="module")
def session(small_scenario, small_profile):
    return run_tracking_session(
        small_scenario, small_profile, ViHOTConfig(), session=0, estimate_stride_s=0.1
    )


def test_session_result_consistent(session):
    assert len(session.errors_deg) == len(session.tracking)
    assert session.active_mask.dtype == bool
    assert session.active_mask.sum() > 0
    assert np.all(session.active_errors_deg >= 0)


def test_session_accuracy_in_paper_band(session):
    assert session.summary().median_deg < 10.0


def test_truth_is_headset_not_perfect(session, small_scenario):
    """Errors are measured against the *headset* (noisy) ground truth."""
    _stream, scene = small_scenario.runtime_capture(0)
    perfect = scene.driver_yaw(session.tracking.target_times)
    assert not np.allclose(session.truth_yaw, perfect)
    # But headset noise is small: within a few degrees almost always.
    assert np.percentile(np.abs(np.rad2deg(session.truth_yaw - perfect)), 90) < 5.0


def test_campaign_pools_sessions(small_scenario, small_profile):
    campaign = run_campaign(
        small_scenario,
        ViHOTConfig(),
        num_sessions=2,
        profile=small_profile,
        estimate_stride_s=0.2,
    )
    assert len(campaign.sessions) == 2
    total = sum(len(s.active_errors_deg) for s in campaign.sessions)
    assert len(campaign.errors_deg) == total
    assert campaign.summary().count == total


def test_campaign_validation(small_scenario, small_profile):
    with pytest.raises(ValueError):
        run_campaign(small_scenario, num_sessions=0, profile=small_profile)


def test_empty_campaign_errors():
    campaign = CampaignResult()
    assert len(campaign.errors_deg) == 0


def test_format_cdf_rows():
    grid = np.arange(0.0, 61.0)
    frac = np.clip(grid / 30.0, 0, 1)
    line = format_cdf_rows("test arm", grid, frac)
    assert "test arm" in line
    assert "P(err<=30deg)=1.00" in line


def test_format_summary_table():
    rows = {
        "a": summarize_errors(np.array([1.0, 2.0])),
        "b": summarize_errors(np.array([5.0, 10.0])),
    }
    table = format_summary_table(rows, title="demo")
    assert "demo" in table
    assert "median" in table
    assert table.count("\n") >= 4
