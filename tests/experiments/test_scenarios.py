"""Scenario builder tests."""

import numpy as np
import pytest

from repro.experiments.scenarios import (
    DRIVERS,
    ScenarioConfig,
    build_scenario,
)


def test_config_validation():
    with pytest.raises(ValueError):
        ScenarioConfig(driver="Z")
    with pytest.raises(ValueError):
        ScenarioConfig(runtime_motion="jumping")
    with pytest.raises(ValueError):
        ScenarioConfig(csma="noisy")
    with pytest.raises(ValueError):
        ScenarioConfig(steering="drifting")
    with pytest.raises(ValueError):
        ScenarioConfig(micromotions=("yawning",))
    with pytest.raises(ValueError):
        ScenarioConfig(num_positions=0)


def test_with_override():
    config = ScenarioConfig().with_(runtime_duration_s=5.0)
    assert config.runtime_duration_s == 5.0
    assert config.driver == "A"


def test_lean_grid_spans_range():
    scenario = build_scenario(num_positions=10, lean_span_m=0.07)
    grid = scenario.lean_grid()
    assert len(grid) == 10
    assert grid[0] == pytest.approx(-0.035)
    assert grid[-1] == pytest.approx(0.035)
    assert np.all(np.diff(grid) > 0)


def test_lean_grid_single_position():
    scenario = build_scenario(num_positions=1)
    np.testing.assert_allclose(scenario.lean_grid(), [0.0])


def test_profiling_scene_starts_facing_front(small_scenario):
    scene = small_scenario.profiling_scene(0)
    hold = small_scenario.config.profile_front_hold_s
    yaw = scene.driver_yaw(np.linspace(0, hold * 0.9, 10))
    np.testing.assert_allclose(yaw, 0.0, atol=1e-6)


def test_runtime_sessions_differ(small_scenario):
    a = small_scenario.runtime_scene(0)
    b = small_scenario.runtime_scene(1)
    t = np.linspace(3.0, 7.0, 50)
    assert not np.allclose(a.driver_yaw(t), b.driver_yaw(t))


def test_scenarios_reproducible():
    t = np.linspace(3.0, 7.0, 50)
    a = build_scenario(seed=42, runtime_duration_s=8.0).runtime_scene(0)
    b = build_scenario(seed=42, runtime_duration_s=8.0).runtime_scene(0)
    np.testing.assert_allclose(a.driver_yaw(t), b.driver_yaw(t))


def test_steering_scenario_has_imu_and_turns():
    scenario = build_scenario(
        seed=1, steering="turns", runtime_duration_s=10.0, runtime_motion="glance"
    )
    stream, scene = scenario.runtime_capture(0)
    assert stream.imu is not None
    assert np.abs(scene.car_yaw_rate(np.linspace(0, 10, 200))).max() > 0.05


def test_still_scenario_is_still():
    scenario = build_scenario(seed=2, runtime_motion="still", runtime_duration_s=5.0)
    scene = scenario.runtime_scene(0)
    np.testing.assert_allclose(scene.driver_yaw(np.linspace(0, 5, 20)), 0.0, atol=1e-9)


def test_drivers_have_distinct_physiques():
    radii = {d.head_radius_m for d in DRIVERS.values()}
    speeds = {d.turn_speed_rad_s for d in DRIVERS.values()}
    assert len(radii) == 3
    assert len(speeds) == 3


def test_reseat_height_shifts_runtime_head():
    base = build_scenario(seed=3, runtime_duration_s=5.0)
    shifted = build_scenario(seed=3, runtime_duration_s=5.0, reseat_height_m=0.02)
    t = np.array([1.0])
    dz = shifted.runtime_scene(0).driver_head_centers(t)[0, 2] - base.runtime_scene(
        0
    ).driver_head_centers(t)[0, 2]
    assert dz == pytest.approx(0.02, abs=1e-6)


def test_passenger_only_at_runtime():
    scenario = build_scenario(seed=4, with_passenger=True, runtime_duration_s=5.0)
    assert scenario.runtime_scene(0).passenger is not None
    assert scenario.profiling_scene(0).passenger is None
