"""The fault-injection catalogue: identity, determinism, windowing,
and per-injector behaviour."""

import numpy as np
import pytest

from repro.faults import (
    AmplitudeFade,
    ClockSkew,
    CsiDropout,
    FaultPlan,
    FaultWindow,
    PacketLossBurst,
    QueueSurge,
    SubcarrierCorruption,
    chaos_plan,
    inject_stream,
    stream_rng,
)
from repro.net.link import CsiStream


def make_packets(n=400, rate_hz=200.0, n_rx=2, n_sub=30, seed=7):
    rng = np.random.default_rng(seed)
    times = np.arange(n) / rate_hz
    csi = np.exp(1j * rng.uniform(-np.pi, np.pi, (n, n_rx, n_sub)))
    return times, csi.astype(np.complex128)


def run_plan(plan, stream_id="s0", **kwargs):
    times, csi = make_packets(**kwargs)
    chain = plan.bind(stream_id)
    out = []
    for t, c in zip(times, csi):
        out.extend(chain.process(float(t), c))
    return out, chain


# ----------------------------------------------------------------------
# The load-bearing properties
# ----------------------------------------------------------------------
def test_empty_plan_is_identity():
    plan = FaultPlan()
    assert not plan.enabled
    times, csi = make_packets(n=50)
    chain = plan.bind("s0")
    for t, c in zip(times, csi):
        out = chain.process(float(t), c)
        assert len(out) == 1
        assert out[0][0] == t
        assert out[0][1] is c  # not even a copy


def test_same_seed_same_stream_replays_bit_identically():
    plan = chaos_plan(seed=3, start_s=0.0, stop_s=10.0)
    a, _ = run_plan(plan)
    b, _ = run_plan(plan)
    assert len(a) == len(b)
    for (ta, ca), (tb, cb) in zip(a, b):
        assert ta == tb or (np.isnan(ta) and np.isnan(tb))
        np.testing.assert_array_equal(ca, cb)


def test_streams_are_independent():
    plan = chaos_plan(seed=3, start_s=0.0, stop_s=10.0)
    a, _ = run_plan(plan, stream_id="s0")
    b, _ = run_plan(plan, stream_id="s1")
    # Different streams see different fault sequences (overwhelmingly).
    if len(a) == len(b):
        assert any(
            not np.array_equal(ca, cb, equal_nan=True)
            for (_, ca), (_, cb) in zip(a, b)
        )


def test_stream_rng_is_stable_and_distinct():
    a = stream_rng(1, "cabin-0001").random(8)
    b = stream_rng(1, "cabin-0001").random(8)
    c = stream_rng(1, "cabin-0002").random(8)
    np.testing.assert_array_equal(a, b)
    assert not np.array_equal(a, c)


def test_faults_confined_to_window():
    window = FaultWindow(0.5, 1.0)
    plan = FaultPlan(
        injectors=(
            PacketLossBurst(drop_rate=0.5, burst_mean=2.0, window=window),
            CsiDropout(storm_rate=0.9, storm_mean=5.0, window=window),
        ),
        seed=0,
    )
    times, csi = make_packets(n=400, rate_hz=200.0)
    chain = plan.bind("s0")
    for t, c in zip(times, csi):
        out = chain.process(float(t), c)
        if not (0.5 <= t < 1.0):
            assert len(out) == 1 and out[0][1] is c
    assert all(b.touched > 0 for b in chain.injectors)


def test_window_validation_and_nan_safety():
    with pytest.raises(ValueError):
        FaultWindow(2.0, 1.0)
    assert not FaultWindow(0.0, 1.0).covers(float("nan"))


# ----------------------------------------------------------------------
# Per-injector behaviour
# ----------------------------------------------------------------------
def test_packet_loss_drops_roughly_at_rate():
    plan = FaultPlan(injectors=(PacketLossBurst(drop_rate=0.2, burst_mean=4.0),), seed=0)
    out, chain = run_plan(plan, n=4000)
    lost = 4000 - len(out)
    assert lost == chain.injectors[0].touched
    assert 0.10 < lost / 4000 < 0.35  # long-run rate near the target


def test_csi_dropout_emits_nan_matrices():
    plan = FaultPlan(injectors=(CsiDropout(storm_rate=0.5, storm_mean=10.0),), seed=0)
    out, chain = run_plan(plan)
    assert chain.injectors[0].touched > 0
    nan_packets = [c for _, c in out if np.all(np.isnan(c.real))]
    assert len(nan_packets) == chain.injectors[0].touched
    assert all(c.shape == out[0][1].shape for c in nan_packets)


def test_subcarrier_corruption_preserves_amplitude():
    plan = FaultPlan(
        injectors=(SubcarrierCorruption(rate=1.0, num_subcarriers=6),), seed=0
    )
    times, csi = make_packets(n=20)
    chain = plan.bind("s0")
    for t, c in zip(times, csi):
        (_, out), = chain.process(float(t), c)
        assert out is not c  # original never mutated
        np.testing.assert_allclose(np.abs(out), np.abs(c), rtol=1e-12)
        # Exactly 6 subcarriers have their phase spun.
        changed = np.any(~np.isclose(out, c), axis=0)
        assert changed.sum() == 6


def test_clock_skew_accumulates_and_corrupts():
    window = FaultWindow(0.0, 10.0)
    plan = FaultPlan(
        injectors=(ClockSkew(skew=1e-3, window=window),), seed=0
    )
    out, _ = run_plan(plan, n=200, rate_hz=100.0)
    # Skew grows linearly from the window start: last stamp is ~2ms late.
    t_true = 199 / 100.0
    assert out[-1][0] == pytest.approx(t_true * (1 + 1e-3))

    plan = FaultPlan(injectors=(ClockSkew(corrupt_rate=0.3, window=window),), seed=0)
    out, chain = run_plan(plan, n=500)
    bad = [t for t, _ in out if not np.isfinite(t)]
    assert len(bad) == chain.injectors[0].touched > 0


def test_amplitude_fade_crushes_magnitude():
    plan = FaultPlan(
        injectors=(AmplitudeFade(fade_rate=0.5, fade_mean=5.0, floor=1e-3, noise=0.0),),
        seed=0,
    )
    out, chain = run_plan(plan, n=500)
    # Inputs are unit-modulus phasors, so faded packets sit exactly at
    # the floor and untouched ones at 1.
    mags = np.array([np.abs(c).max() for _, c in out])
    faded = mags < 1e-2
    assert faded.sum() == chain.injectors[0].touched > 0
    np.testing.assert_allclose(mags[faded], 1e-3, rtol=1e-9)
    np.testing.assert_allclose(mags[~faded], 1.0, rtol=1e-9)


def test_queue_surge_duplicates():
    plan = FaultPlan(
        injectors=(QueueSurge(surge_rate=0.5, surge_mean=5.0, amplification=4),),
        seed=0,
    )
    out, chain = run_plan(plan, n=200)
    assert chain.injectors[0].touched > 0
    assert len(out) == 200 + 3 * chain.injectors[0].touched


def test_chain_composes_in_order():
    # Loss first means the dropout never sees the dropped packets.
    window = FaultWindow(0.0, 10.0)
    plan = FaultPlan(
        injectors=(
            PacketLossBurst(drop_rate=0.3, burst_mean=3.0, window=window),
            CsiDropout(storm_rate=0.2, storm_mean=5.0, window=window),
        ),
        seed=1,
    )
    out, chain = run_plan(plan, n=1000)
    loss, dropout = chain.injectors
    assert dropout.seen == 1000 - loss.touched
    assert chain.touched_counts() == {
        "packet_loss": loss.touched,
        "csi_dropout": dropout.touched,
    }


# ----------------------------------------------------------------------
# CsiStream replay wrapper
# ----------------------------------------------------------------------
def make_stream(n=300, rate_hz=200.0):
    times, csi = make_packets(n=n, rate_hz=rate_hz)
    return CsiStream(times, csi, np.arange(n))


def test_inject_stream_disabled_returns_same_object():
    stream = make_stream()
    assert inject_stream(stream, FaultPlan()) is stream


def test_inject_stream_applies_plan():
    stream = make_stream(n=600)
    plan = FaultPlan(
        injectors=(PacketLossBurst(drop_rate=0.3, burst_mean=4.0),), seed=5
    )
    out = inject_stream(stream, plan)
    assert out is not stream
    assert 0 < len(out) < len(stream)
    assert out.csi.dtype == stream.csi.dtype
    np.testing.assert_array_equal(out.seqs, np.arange(len(out)))
    # Determinism: same plan, same stream id, same result.
    again = inject_stream(stream, plan)
    np.testing.assert_array_equal(out.times, again.times)
    np.testing.assert_array_equal(out.csi, again.csi)
