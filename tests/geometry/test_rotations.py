"""Rotation and angle-convention tests."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.geometry.rotations import (
    euler_zyx,
    rotx,
    roty,
    rotz,
    unwrap_angles,
    wrap_angle,
    yaw_of,
)

angles = st.floats(min_value=-10.0, max_value=10.0, allow_nan=False)


def test_rotz_rotates_x_to_y():
    r = rotz(np.pi / 2)
    np.testing.assert_allclose(r @ [1, 0, 0], [0, 1, 0], atol=1e-12)


def test_roty_rotates_z_to_x():
    r = roty(np.pi / 2)
    np.testing.assert_allclose(r @ [0, 0, 1], [1, 0, 0], atol=1e-12)


def test_rotx_rotates_y_to_z():
    r = rotx(np.pi / 2)
    np.testing.assert_allclose(r @ [0, 1, 0], [0, 0, 1], atol=1e-12)


@given(angles)
def test_rotation_matrices_orthonormal(a):
    for r in (rotz(a), roty(a), rotx(a)):
        np.testing.assert_allclose(r @ r.T, np.eye(3), atol=1e-9)
        assert np.linalg.det(r) == pytest.approx(1.0)


@given(angles, angles, angles)
def test_yaw_roundtrip(yaw, pitch, roll):
    # yaw extraction is exact when |pitch| < pi/2 (no gimbal ambiguity)
    pitch = np.clip(pitch, -1.4, 1.4)
    r = euler_zyx(yaw, pitch, roll)
    recovered = yaw_of(r)
    expected = wrap_angle(yaw)
    assert abs(wrap_angle(recovered - expected)) < 1e-9


def test_wrap_angle_range():
    assert wrap_angle(3 * np.pi) == pytest.approx(np.pi)
    assert wrap_angle(-3 * np.pi) == pytest.approx(np.pi)
    assert wrap_angle(0.5) == pytest.approx(0.5)


@given(angles)
def test_wrap_angle_idempotent(a):
    w = wrap_angle(a)
    assert -np.pi < w <= np.pi + 1e-12
    assert wrap_angle(w) == pytest.approx(w)


def test_unwrap_angles_continuous():
    track = np.linspace(0, 4 * np.pi, 100)
    wrapped = wrap_angle(track)
    unwrapped = unwrap_angles(wrapped)
    np.testing.assert_allclose(np.diff(unwrapped), np.diff(track), atol=1e-9)


def test_unwrap_rejects_2d():
    with pytest.raises(ValueError):
        unwrap_angles(np.zeros((3, 3)))


def test_yaw_of_rejects_bad_shape():
    with pytest.raises(ValueError):
        yaw_of(np.eye(4))
