"""Sphere geometry: reflection points, blockage, creeping detours."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.geometry.shapes import (
    Sphere,
    creeping_excess,
    reflection_point_sphere,
    segment_intersects_sphere,
)
from repro.geometry.vec import vec3

coords = st.floats(min_value=-3.0, max_value=3.0, allow_nan=False)


def test_sphere_validation():
    with pytest.raises(ValueError):
        Sphere(vec3(0, 0, 0), -1.0)
    with pytest.raises(ValueError):
        Sphere(np.zeros(2), 1.0)


def test_sphere_contains():
    s = Sphere(vec3(0, 0, 0), 1.0)
    assert s.contains(vec3(0.5, 0, 0))
    assert s.contains(vec3(1.0, 0, 0))
    assert not s.contains(vec3(1.01, 0, 0))


def test_reflection_point_on_surface():
    s = Sphere(vec3(0, 0, 0), 0.1)
    p = reflection_point_sphere(vec3(-1, 0, 0), vec3(1, 0.5, 0), s)
    assert np.linalg.norm(p - s.center) == pytest.approx(0.1)


def test_reflection_point_symmetric_case():
    # TX and RX symmetric about the sphere: reflection at the midpoint side.
    s = Sphere(vec3(0, 0, 0), 0.1)
    p = reflection_point_sphere(vec3(-1, 1, 0), vec3(1, 1, 0), s)
    np.testing.assert_allclose(p, [0.0, 0.1, 0.0], atol=1e-12)


def test_segment_blockage():
    s = Sphere(vec3(0, 0, 0), 0.2)
    assert segment_intersects_sphere(vec3(-1, 0, 0), vec3(1, 0, 0), s)
    assert not segment_intersects_sphere(vec3(-1, 1, 0), vec3(1, 1, 0), s)
    # Segment ending before the sphere does not intersect.
    assert not segment_intersects_sphere(vec3(-1, 0, 0), vec3(-0.5, 0, 0), s)


def test_degenerate_segment_is_point_test():
    s = Sphere(vec3(0, 0, 0), 0.2)
    assert segment_intersects_sphere(vec3(0.1, 0, 0), vec3(0.1, 0, 0), s)
    assert not segment_intersects_sphere(vec3(1, 0, 0), vec3(1, 0, 0), s)


def test_creeping_excess_zero_when_clear():
    s = Sphere(vec3(0, 0, 1.0), 0.2)
    assert creeping_excess(vec3(-1, 0, 0), vec3(1, 0, 0), s) == 0.0


def test_creeping_excess_positive_when_blocked():
    s = Sphere(vec3(0, 0, 0), 0.2)
    excess = creeping_excess(vec3(-1, 0, 0), vec3(1, 0, 0), s)
    assert excess > 0.0
    # Through-centre worst case for a unit-ish geometry: the detour is
    # bounded by the half-circumference minus the diameter.
    assert excess < np.pi * 0.2


def test_creeping_excess_decreases_with_clearance():
    a, b = vec3(-1, 0, 0), vec3(1, 0, 0)
    e0 = creeping_excess(a, b, Sphere(vec3(0, 0, 0.00), 0.2))
    e1 = creeping_excess(a, b, Sphere(vec3(0, 0, 0.10), 0.2))
    e2 = creeping_excess(a, b, Sphere(vec3(0, 0, 0.19), 0.2))
    assert e0 > e1 > e2 > 0.0


def test_creeping_excess_endpoint_inside_falls_back():
    s = Sphere(vec3(0, 0, 0), 0.2)
    excess = creeping_excess(vec3(0.05, 0, 0), vec3(1, 0, 0), s)
    assert excess == pytest.approx((np.pi / 2 - 1) * 0.2)


@given(coords, coords, coords)
def test_creeping_excess_nonnegative(cx, cy, cz):
    s = Sphere(vec3(cx, cy, cz), 0.15)
    a, b = vec3(-2.5, 0, 0), vec3(2.5, 0, 0)
    if s.contains(a) or s.contains(b):
        return
    assert creeping_excess(a, b, s) >= 0.0
