"""Vector helper tests."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.geometry.vec import (
    angle_between,
    distance,
    norm,
    normalize,
    project_onto,
    vec3,
)

finite = st.floats(min_value=-1e6, max_value=1e6, allow_nan=False)


def test_vec3_builds_float64():
    v = vec3(1, 2, 3)
    assert v.dtype == np.float64
    assert v.shape == (3,)


def test_norm_scalar_and_batch():
    assert norm(vec3(3, 4, 0)) == pytest.approx(5.0)
    batch = np.array([[1.0, 0, 0], [0, 2.0, 0]])
    np.testing.assert_allclose(norm(batch), [1.0, 2.0])


def test_normalize_unit_length():
    u = normalize(vec3(3, 4, 0))
    assert np.linalg.norm(u) == pytest.approx(1.0)
    np.testing.assert_allclose(u, [0.6, 0.8, 0.0])


def test_normalize_rejects_zero():
    with pytest.raises(ValueError):
        normalize(vec3(0, 0, 0))


def test_distance_symmetric():
    a, b = vec3(1, 2, 3), vec3(4, 6, 3)
    assert distance(a, b) == pytest.approx(5.0)
    assert distance(b, a) == pytest.approx(distance(a, b))


def test_angle_between_orthogonal_and_parallel():
    assert angle_between(vec3(1, 0, 0), vec3(0, 1, 0)) == pytest.approx(np.pi / 2)
    assert angle_between(vec3(1, 0, 0), vec3(2, 0, 0)) == pytest.approx(0.0)
    assert angle_between(vec3(1, 0, 0), vec3(-1, 0, 0)) == pytest.approx(np.pi)


def test_project_onto_recovers_component():
    v = vec3(3, 4, 5)
    p = project_onto(v, vec3(1, 0, 0))
    np.testing.assert_allclose(p, [3.0, 0.0, 0.0])


def test_bad_shape_rejected():
    with pytest.raises(ValueError):
        norm(np.array([1.0, 2.0]))


@given(finite, finite, finite)
def test_normalize_idempotent(x, y, z):
    v = vec3(x, y, z)
    if np.linalg.norm(v) < 1e-6:
        return
    u = normalize(v)
    np.testing.assert_allclose(normalize(u), u, atol=1e-12)


@given(finite, finite, finite, finite, finite, finite)
def test_triangle_inequality(ax, ay, az, bx, by, bz):
    a, b = vec3(ax, ay, az), vec3(bx, by, bz)
    assert distance(a, b) <= norm(a) + norm(b) + 1e-6
