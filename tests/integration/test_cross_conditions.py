"""Cross-condition integration tests: presets, bands, fused systems."""

import pytest

from repro.core import ViHOTConfig, ViHOTTracker, diagnose
from repro.experiments.presets import preset_scenario
from repro.experiments.runner import run_profiling, run_tracking_session


SMALL = dict(num_positions=4, profile_seconds=5.0, runtime_duration_s=8.0)


@pytest.mark.parametrize("preset", ["campus", "city", "parked"])
def test_presets_track_in_band(preset):
    scenario = preset_scenario(preset, seed=31, **SMALL)
    profile = run_profiling(scenario)
    session = run_tracking_session(
        scenario, profile, ViHOTConfig(), estimate_stride_s=0.1,
        with_camera_fallback=True,
    )
    # City (turns + interference) is the hardest; still bounded.
    limit = 20.0 if preset == "city" else 12.0
    assert session.summary().median_deg < limit


def test_5ghz_scenario_tracks():
    from repro.experiments.scenarios import build_scenario

    scenario = build_scenario(seed=32, band="5GHz", **SMALL)
    profile = run_profiling(scenario)
    session = run_tracking_session(scenario, profile, estimate_stride_s=0.1)
    assert session.summary().median_deg < 12.0


def test_highway_imu_not_confused_by_speed():
    """At 30 m/s with lane keeping only, the car yaw rate stays small

    enough that the steering identifier rarely fires."""
    scenario = preset_scenario("highway", seed=33, **SMALL)
    profile = run_profiling(scenario)
    session = run_tracking_session(
        scenario, profile, ViHOTConfig(), estimate_stride_s=0.1
    )
    held = session.tracking.mode_fraction("held") + session.tracking.mode_fraction(
        "fallback"
    )
    assert held < 0.6


def test_diagnostics_on_mismatched_profile():
    """Tracking a different driver's cabin with my profile must show up

    in the self-diagnostics (higher DTW residual / fewer confident
    matches), even without ground truth."""
    mine = preset_scenario("parked", seed=34, **SMALL)
    profile = run_profiling(mine)

    other = preset_scenario("parked", seed=34, driver="B", **SMALL)
    stream, _scene = other.runtime_capture(0)
    result = ViHOTTracker(profile, ViHOTConfig()).process(
        stream, estimate_stride_s=0.1
    )
    health_mismatch = diagnose(result, stream)

    own_stream, _ = mine.runtime_capture(0)
    own_result = ViHOTTracker(profile, ViHOTConfig()).process(
        own_stream, estimate_stride_s=0.1
    )
    health_own = diagnose(own_result, own_stream)

    assert (
        health_mismatch.median_dtw_distance
        > health_own.median_dtw_distance
    )
