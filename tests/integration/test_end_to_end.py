"""End-to-end integration tests: profile -> track -> evaluate."""

import numpy as np

from repro import (
    CsiProfile,
    ViHOTConfig,
    ViHOTTracker,
    build_scenario,
    run_campaign,
    run_profiling,
    run_tracking_session,
)


def test_full_pipeline_headline_accuracy(small_scenario, small_profile):
    """The paper's headline: 4-10 degree median angular error."""
    session = run_tracking_session(
        small_scenario, small_profile, ViHOTConfig(), estimate_stride_s=0.1
    )
    assert session.summary().median_deg < 10.0


def test_profile_persistence_roundtrip_tracks_identically(
    tmp_path, small_scenario, small_profile, runtime_stream
):
    """A saved+reloaded profile must drive the tracker to identical output."""
    path = tmp_path / "driver_a.npz"
    small_profile.save(path)
    reloaded = CsiProfile.load(path)

    stream, _scene = runtime_stream
    a = ViHOTTracker(small_profile).process(stream, estimate_stride_s=0.25)
    b = ViHOTTracker(reloaded).process(stream, estimate_stride_s=0.25)
    np.testing.assert_allclose(a.orientations, b.orientations, atol=1e-9)
    assert a.modes == b.modes


def test_tracking_deterministic(small_profile, runtime_stream):
    stream, _scene = runtime_stream
    a = ViHOTTracker(small_profile).process(stream, estimate_stride_s=0.25)
    b = ViHOTTracker(small_profile).process(stream, estimate_stride_s=0.25)
    np.testing.assert_allclose(a.orientations, b.orientations)


def test_interference_degrades_but_does_not_break():
    clean = build_scenario(seed=11, runtime_duration_s=8.0, num_positions=4,
                           profile_seconds=5.0)
    profile = run_profiling(clean)
    busy = build_scenario(seed=11, runtime_duration_s=8.0, num_positions=4,
                          profile_seconds=5.0, csma="interfered")
    clean_result = run_campaign(clean, num_sessions=1, profile=profile,
                                estimate_stride_s=0.1)
    busy_result = run_campaign(busy, num_sessions=1, profile=profile,
                               estimate_stride_s=0.1)
    # Still within the paper's band under interference (Fig. 17d: ~10 deg).
    assert busy_result.summary().median_deg < 15.0
    assert clean_result.summary().median_deg < 10.0


def test_vibration_degrades_but_stays_in_band():
    base = build_scenario(seed=12, runtime_duration_s=8.0, num_positions=4,
                          profile_seconds=5.0)
    profile = run_profiling(base)
    shaky = build_scenario(seed=12, runtime_duration_s=8.0, num_positions=4,
                           profile_seconds=5.0, vibration_amplitude_m=0.003)
    result = run_campaign(shaky, num_sessions=1, profile=profile,
                          estimate_stride_s=0.1)
    # Fig. 17a: median ~6 degrees under worst-case vibration.
    assert result.summary().median_deg < 15.0


def test_passenger_presence_tolerated():
    base = build_scenario(seed=13, runtime_duration_s=8.0, num_positions=4,
                          profile_seconds=5.0)
    profile = run_profiling(base)
    crowded = build_scenario(seed=13, runtime_duration_s=8.0, num_positions=4,
                             profile_seconds=5.0, with_passenger=True)
    result = run_campaign(crowded, num_sessions=1, profile=profile,
                          estimate_stride_s=0.1)
    assert result.summary().median_deg < 12.0


def test_forecasting_monotone_degradation(small_scenario, small_profile):
    """Fig. 10a's shape: error grows with the prediction horizon."""
    medians = []
    for horizon in (0.0, 0.4):
        session = run_tracking_session(
            small_scenario,
            small_profile,
            ViHOTConfig(horizon_s=horizon),
            estimate_stride_s=0.15,
        )
        medians.append(session.summary().mean_deg)
    assert medians[1] > medians[0]


def test_steering_identifier_prevents_corruption():
    scenario = build_scenario(
        seed=14,
        runtime_duration_s=10.0,
        num_positions=4,
        profile_seconds=5.0,
        runtime_motion="glance",
        steering="turns",
    )
    profile = run_profiling(scenario)
    session = run_tracking_session(
        scenario, profile, ViHOTConfig(), estimate_stride_s=0.1,
        with_camera_fallback=True,
    )
    # With the identifier + camera fallback, turns do not blow up tracking.
    assert session.summary().median_deg < 12.0
    assert "fallback" in session.tracking.modes
