"""Failure injection and robustness tests."""

import numpy as np

from repro.core import ViHOTTracker
from repro.core.profile import CsiProfile
from repro.core.profiling import build_position_profile
from repro.dsp.series import TimeSeries
from repro.net.link import CsiStream


def test_tracker_survives_packet_gaps(small_profile, runtime_stream):
    """Drop 30% of packets in bursts: the tracker must keep producing

    estimates (Sec. 5.3.5's resampling-across-gaps situation)."""
    stream, scene = runtime_stream
    rng = np.random.default_rng(0)
    keep = np.ones(len(stream), dtype=bool)
    # Burst losses: knock out 25 consecutive packets at random spots.
    for _ in range(int(len(stream) * 0.3 / 25)):
        start = rng.integers(0, len(stream) - 25)
        keep[start : start + 25] = False
    lossy = CsiStream(
        stream.times[keep], stream.csi[keep], stream.seqs[keep], stream.imu
    )
    result = ViHOTTracker(small_profile).process(lossy, estimate_stride_s=0.1)
    assert len(result) > 20
    truth = scene.driver_yaw(result.target_times)
    err = np.abs(np.rad2deg(result.orientations - truth))
    assert np.median(err[result.target_times > 2.5]) < 15.0


def test_tracker_rejects_too_short_capture(small_profile, runtime_stream):
    stream, _scene = runtime_stream
    tiny = stream.slice(0.0, 0.05)
    tracker = ViHOTTracker(small_profile)
    result = tracker.process(tiny, estimate_stride_s=0.05)
    # Nothing to track: no estimates rather than garbage.
    assert len(result) == 0


def test_single_position_profile_still_tracks(small_scenario):
    """With one profiled position the system degrades but functions."""
    config = small_scenario.config
    scene = small_scenario.profiling_scene(config.num_positions // 2)
    link = small_scenario._link(scene, 97)
    total = config.profile_front_hold_s + config.profile_seconds
    stream = link.capture(0.0, total, with_imu=False)
    truth = TimeSeries(stream.times, scene.driver_yaw(stream.times))
    profile = CsiProfile()
    profile.add(
        build_position_profile(
            stream, truth, label=0.0, front_hold_s=config.profile_front_hold_s
        )
    )
    runtime, rt_scene = small_scenario.runtime_capture(0)
    result = ViHOTTracker(profile).process(runtime, estimate_stride_s=0.1)
    assert len(result) > 20


def test_stationary_scenario_stays_at_zero(small_profile):
    from repro.experiments.scenarios import build_scenario

    scenario = build_scenario(
        seed=77,
        num_positions=4,
        profile_seconds=5.0,
        runtime_motion="still",
        runtime_duration_s=6.0,
    )
    profile = scenario.build_profile()
    stream, _scene = scenario.runtime_capture(0)
    result = ViHOTTracker(profile).process(stream, estimate_stride_s=0.2)
    est_deg = np.abs(np.rad2deg(result.orientations))
    assert np.median(est_deg) < 3.0


def test_tracker_handles_imu_clock_offset(small_profile, runtime_stream):
    """A few-ms NTP offset on IMU timestamps must not break tracking."""
    stream, scene = runtime_stream
    if stream.imu is None:
        shifted_imu = None
    else:
        shifted_imu = TimeSeries(stream.imu.times + 0.008, stream.imu.values)
    shifted = CsiStream(stream.times, stream.csi, stream.seqs, shifted_imu)
    result = ViHOTTracker(small_profile).process(shifted, estimate_stride_s=0.1)
    truth = scene.driver_yaw(result.target_times)
    err = np.abs(np.rad2deg(result.orientations - truth))
    assert np.median(err[result.target_times > 2.5]) < 12.0


def test_profile_with_narrow_coverage_clamps(small_scenario):
    """A profile that never saw beyond +-30 deg cannot output +-80, but

    must not crash when the runtime head goes there."""
    from repro.experiments.scenarios import build_scenario

    narrow = build_scenario(
        seed=88,
        num_positions=3,
        profile_seconds=5.0,
        profile_scan_amplitude=np.deg2rad(30.0),
        runtime_duration_s=6.0,
    )
    profile = narrow.build_profile()
    stream, _scene = narrow.runtime_capture(0)
    result = ViHOTTracker(profile).process(stream, estimate_stride_s=0.2)
    assert len(result) > 5
    # All outputs stay within the profiled range (plus slack for noise).
    assert np.abs(np.rad2deg(result.orientations)).max() < 45.0
