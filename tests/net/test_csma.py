"""CSMA packet-timing tests — the paper's measured rates must hold."""

import numpy as np
import pytest

from repro.net.csma import CsmaConfig, PacketTimeline


def achieved_rate(config, duration=20.0, seed=0):
    timeline = PacketTimeline(config, rng=np.random.default_rng(seed))
    times = timeline.sample(0.0, duration)
    return (len(times) - 1) / (times[-1] - times[0]), np.max(np.diff(times))


def test_clean_rate_near_500hz():
    rate, max_gap = achieved_rate(CsmaConfig.clean())
    assert rate == pytest.approx(500.0, rel=0.1)
    assert max_gap <= CsmaConfig.clean().max_gap_s + 1e-12


def test_interfered_rate_near_400hz():
    rate, max_gap = achieved_rate(CsmaConfig.interfered())
    assert rate == pytest.approx(400.0, rel=0.15)
    assert max_gap <= 0.049 + 1e-12


def test_interference_slows_sampling_and_stretches_gaps():
    clean_rate, clean_gap = achieved_rate(CsmaConfig.clean())
    bad_rate, bad_gap = achieved_rate(CsmaConfig.interfered())
    assert bad_rate < clean_rate
    assert bad_gap > clean_gap


def test_times_strictly_increasing():
    timeline = PacketTimeline(rng=np.random.default_rng(1))
    times = timeline.sample(0.0, 5.0)
    assert np.all(np.diff(times) > 0)
    assert times[0] >= 0.0
    assert times[-1] < 5.0


def test_min_interval_respected():
    config = CsmaConfig(min_interval_s=0.001)
    timeline = PacketTimeline(config, rng=np.random.default_rng(2))
    times = timeline.sample(0.0, 5.0)
    assert np.min(np.diff(times)) >= 0.001


def test_deterministic_with_seed():
    a = PacketTimeline(rng=np.random.default_rng(7)).sample(0.0, 2.0)
    b = PacketTimeline(rng=np.random.default_rng(7)).sample(0.0, 2.0)
    np.testing.assert_allclose(a, b)


def test_config_validation():
    with pytest.raises(ValueError):
        CsmaConfig(rate_hz=0.0)
    with pytest.raises(ValueError):
        CsmaConfig(min_interval_s=0.01, rate_hz=500.0)  # >= mean interval
    with pytest.raises(ValueError):
        CsmaConfig(busy_fraction=1.0)
    with pytest.raises(ValueError):
        CsmaConfig(max_gap_s=0.0001)


def test_empty_span_rejected():
    timeline = PacketTimeline()
    with pytest.raises(ValueError):
        timeline.sample(1.0, 1.0)
