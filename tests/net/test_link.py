"""WiFi link end-to-end tests."""

import numpy as np
import pytest

from repro.cabin.scene import CabinScene
from repro.net.csma import CsmaConfig
from repro.net.link import CsiStream, WifiLink
from repro.rf.channel import ChannelSimulator
from repro.rf.impairments import HardwareImpairments
from repro.rf.spectrum import Spectrum


@pytest.fixture(scope="module")
def link():
    spectrum = Spectrum()
    scene = CabinScene()
    channel = ChannelSimulator(
        scene, spectrum, HardwareImpairments(spectrum, rng=np.random.default_rng(0))
    )
    return WifiLink(channel, rng=np.random.default_rng(1))


def test_capture_shapes(link):
    stream = link.capture(0.0, 2.0)
    assert stream.csi.shape == (len(stream), 2, 30)
    assert len(stream.seqs) == len(stream)
    assert np.all(np.diff(stream.times) > 0)


def test_capture_rate_near_500(link):
    stream = link.capture(0.0, 4.0)
    rate = (len(stream) - 1) / (stream.times[-1] - stream.times[0])
    assert rate == pytest.approx(500.0, rel=0.1)


def test_capture_includes_imu_by_default(link):
    stream = link.capture(0.0, 1.0)
    assert stream.imu is not None
    assert len(stream.imu) > 50


def test_capture_without_imu(link):
    stream = link.capture(0.0, 1.0, with_imu=False)
    assert stream.imu is None


def test_capture_empty_span(link):
    with pytest.raises(ValueError):
        link.capture(1.0, 1.0)


def test_stream_slice(link):
    stream = link.capture(0.0, 2.0)
    part = stream.slice(0.5, 1.0)
    assert part.times[0] >= 0.5
    assert part.times[-1] <= 1.0
    assert part.csi.shape[0] == len(part)
    assert part.imu is not None


def test_stream_slice_inverted_interval_raises(link):
    stream = link.capture(0.0, 2.0)
    with pytest.raises(ValueError, match="inverted"):
        stream.slice(1.5, 0.5)
    # A degenerate (empty but not inverted) interval is still fine.
    assert len(stream.slice(1.0, 1.0)) <= 1


def test_stream_validation():
    with pytest.raises(ValueError):
        CsiStream(np.zeros(3), np.zeros((2, 2, 30), dtype=complex), np.zeros(3))


def test_interfered_link_slower():
    spectrum = Spectrum()
    channel = ChannelSimulator(CabinScene(), spectrum)
    clean = WifiLink(channel, rng=np.random.default_rng(2))
    busy = WifiLink(channel, csma=CsmaConfig.interfered(), rng=np.random.default_rng(2))
    n_clean = len(clean.capture(0.0, 4.0, with_imu=False))
    n_busy = len(busy.capture(0.0, 4.0, with_imu=False))
    assert n_busy < n_clean


def test_stream_save_load_roundtrip(tmp_path, link):
    stream = link.capture(0.0, 1.0)
    path = tmp_path / "capture.npz"
    stream.save(path)
    from repro.net.link import CsiStream

    back = CsiStream.load(path)
    np.testing.assert_array_equal(back.times, stream.times)
    np.testing.assert_array_equal(back.csi, stream.csi)
    np.testing.assert_array_equal(back.seqs, stream.seqs)
    assert back.csi.dtype == stream.csi.dtype
    assert back.imu is not None
    np.testing.assert_array_equal(back.imu.times, stream.imu.times)
    np.testing.assert_array_equal(
        np.asarray(back.imu.values), np.asarray(stream.imu.values)
    )


def test_stream_roundtrip_preserves_slices(tmp_path, link):
    """A loaded capture behaves identically to the original."""
    stream = link.capture(0.0, 2.0)
    path = tmp_path / "capture.npz"
    stream.save(path)
    back = CsiStream.load(path)
    original = stream.slice(0.5, 1.5)
    loaded = back.slice(0.5, 1.5)
    assert len(original) == len(loaded)
    np.testing.assert_array_equal(original.csi, loaded.csi)


def test_stream_load_rejects_foreign_npz(tmp_path):
    path = tmp_path / "foreign.npz"
    np.savez_compressed(
        path,
        meta_json=np.frombuffer(b'{"format": "something-else"}', dtype=np.uint8),
    )
    with pytest.raises(ValueError, match="unrecognised"):
        CsiStream.load(path)


def test_stream_save_load_without_imu(tmp_path, link):
    stream = link.capture(0.0, 1.0, with_imu=False)
    path = tmp_path / "capture.npz"
    stream.save(path)
    from repro.net.link import CsiStream

    assert CsiStream.load(path).imu is None


def test_stream_load_missing_file(tmp_path):
    from repro.net.link import CsiStream

    with pytest.raises(FileNotFoundError):
        CsiStream.load(tmp_path / "nope.npz")
