"""Iperf traffic, CSI tool quantisation and clock model tests."""

import numpy as np
import pytest

from repro.dsp.series import TimeSeries
from repro.net.clock import ClockModel
from repro.net.csi_tool import CsiTool, CsiToolConfig
from repro.net.csma import PacketTimeline
from repro.net.traffic import IperfClient
from repro.rf.spectrum import Spectrum


def test_iperf_sequence_numbers_monotone():
    client = IperfClient(PacketTimeline(rng=np.random.default_rng(0)))
    packets = client.stream(0.0, 1.0)
    seqs = [p.seq for p in packets]
    assert seqs == sorted(seqs)
    assert len(set(seqs)) == len(seqs)


def test_iperf_loss_burns_sequence_numbers():
    client = IperfClient(
        PacketTimeline(rng=np.random.default_rng(1)),
        loss_rate=0.3,
        rng=np.random.default_rng(2),
    )
    packets = client.stream(0.0, 2.0)
    seqs = [p.seq for p in packets]
    # Holes exist: max seq exceeds the received count.
    assert seqs[-1] >= len(packets)


def test_iperf_piggybacks_latest_imu():
    imu = TimeSeries(np.array([0.0, 0.5, 1.0]), np.array([0.1, 0.2, 0.3]))
    client = IperfClient(PacketTimeline(rng=np.random.default_rng(3)))
    packets = client.stream(0.0, 1.2, imu_stream=imu)
    for p in packets:
        if p.time >= 1.0:
            assert p.imu_yaw_rate == pytest.approx(0.3)
        elif 0.5 <= p.time < 1.0:
            assert p.imu_yaw_rate == pytest.approx(0.2)


def test_iperf_validation():
    with pytest.raises(ValueError):
        IperfClient(PacketTimeline(), payload_bytes=0)
    with pytest.raises(ValueError):
        IperfClient(PacketTimeline(), loss_rate=1.0)


# ---------------------------------------------------------------- CSI tool
def test_quantize_small_relative_error():
    rng = np.random.default_rng(4)
    csi = rng.normal(size=(10, 2, 30)) + 1j * rng.normal(size=(10, 2, 30))
    tool = CsiTool(Spectrum())
    q = tool.quantize(csi)
    rel = np.abs(q - csi) / np.abs(csi).max()
    assert rel.max() < 0.02  # 8-bit with AGC headroom


def test_requantization_adds_little_error():
    # Per-packet AGC means quantisation is not exactly idempotent, but a
    # second pass must stay within one quantisation step of the first.
    rng = np.random.default_rng(5)
    csi = rng.normal(size=(4, 2, 30)) + 1j * rng.normal(size=(4, 2, 30))
    tool = CsiTool(Spectrum())
    q1 = tool.quantize(csi)
    q2 = tool.quantize(q1)
    step = np.abs(csi).max() / (0.9 * 127)
    assert np.abs(q2 - q1).max() < 2 * step


def test_quantize_handles_zero_packet():
    csi = np.zeros((2, 2, 30), dtype=complex)
    tool = CsiTool(Spectrum())
    np.testing.assert_allclose(tool.quantize(csi), 0.0)


def test_quantize_more_bits_less_error():
    rng = np.random.default_rng(6)
    csi = rng.normal(size=(10, 2, 30)) + 1j * rng.normal(size=(10, 2, 30))
    coarse = CsiTool(Spectrum(), CsiToolConfig(bits=4)).quantize(csi)
    fine = CsiTool(Spectrum(), CsiToolConfig(bits=12)).quantize(csi)
    assert np.abs(fine - csi).mean() < np.abs(coarse - csi).mean()


def test_records_shapes_and_rssi():
    rng = np.random.default_rng(7)
    csi = rng.normal(size=(3, 2, 30)) + 1j * rng.normal(size=(3, 2, 30))
    tool = CsiTool(Spectrum())
    records = tool.records(np.array([0.0, 0.1, 0.2]), np.arange(3), csi)
    assert len(records) == 3
    assert records[0].csi.shape == (2, 30)
    assert np.isfinite(records[0].rssi_dbm)


def test_records_length_mismatch():
    tool = CsiTool(Spectrum())
    with pytest.raises(ValueError):
        tool.records(np.zeros(2), np.zeros(3), np.zeros((2, 2, 30), dtype=complex))


def test_tool_config_validation():
    with pytest.raises(ValueError):
        CsiToolConfig(bits=1)
    with pytest.raises(ValueError):
        CsiToolConfig(agc_headroom=0.0)


# ---------------------------------------------------------------- clocks
def test_clock_roundtrip():
    clock = ClockModel(offset_s=0.004, drift_ppm=12.0)
    t = np.linspace(0, 100, 11)
    np.testing.assert_allclose(clock.to_true(clock.to_device(t)), t, atol=1e-9)


def test_clock_offset_applied():
    clock = ClockModel(offset_s=0.01)
    assert clock.to_device(1.0) == pytest.approx(1.01)


def test_clock_drift_grows_with_time():
    clock = ClockModel(drift_ppm=10.0)
    assert clock.to_device(1000.0) - 1000.0 == pytest.approx(0.01)


def test_ntp_synced_draw_small():
    clock = ClockModel.ntp_synced(np.random.default_rng(8))
    assert abs(clock.offset_s) < 0.05
    assert abs(clock.drift_ppm) < 100.0
