"""Antenna and radiation-pattern tests."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.geometry.vec import vec3
from repro.rf.antenna import Antenna, DipolePattern, IsotropicPattern

coords = st.floats(min_value=-2.0, max_value=2.0, allow_nan=False)


def test_isotropic_unit_gain():
    p = IsotropicPattern()
    dirs = np.array([[1.0, 0, 0], [0, 1.0, 0], [0.3, -0.4, 0.5]])
    np.testing.assert_allclose(p.gain(dirs), 1.0)


def test_dipole_null_along_axis():
    p = DipolePattern(axis=vec3(0, 1, 0), floor=0.05)
    assert p.gain(vec3(0, 1, 0)) == pytest.approx(0.05)
    assert p.gain(vec3(0, -5, 0)) == pytest.approx(0.05)


def test_dipole_max_broadside():
    p = DipolePattern(axis=vec3(0, 1, 0))
    assert p.gain(vec3(1, 0, 0)) == pytest.approx(1.0)
    assert p.gain(vec3(0, 0, 3)) == pytest.approx(1.0)


def test_dipole_gain_between_floor_and_one():
    p = DipolePattern(axis=vec3(1, 1, 0), floor=0.1)
    rng = np.random.default_rng(0)
    dirs = rng.normal(size=(100, 3))
    g = p.gain(dirs)
    assert np.all((0.1 <= g) & (g <= 1.0))


@given(coords, coords, coords)
def test_dipole_symmetric_under_negation(x, y, z):
    if abs(x) + abs(y) + abs(z) < 1e-6:
        return
    p = DipolePattern(axis=vec3(0, 0, 1))
    d = vec3(x, y, z)
    assert p.gain(d) == pytest.approx(p.gain(-d), rel=1e-9)


def test_dipole_rejects_zero_direction():
    p = DipolePattern()
    with pytest.raises(ValueError):
        p.gain(vec3(0, 0, 0))


def test_dipole_validation():
    with pytest.raises(ValueError):
        DipolePattern(floor=1.0)
    with pytest.raises(ValueError):
        DipolePattern(axis=vec3(0, 0, 0))


def test_antenna_gain_toward():
    a = Antenna(vec3(0, 0, 0), DipolePattern(axis=vec3(0, 1, 0), floor=0.02))
    # Point along the axis: floor.  Broadside: full gain.
    assert a.gain_toward(vec3(0, 2, 0)) == pytest.approx(0.02)
    assert a.gain_toward(vec3(5, 0, 0)) == pytest.approx(1.0)


def test_antenna_position_validation():
    with pytest.raises(ValueError):
        Antenna(np.zeros(2))


def test_antenna_default_isotropic():
    a = Antenna(vec3(1, 2, 3))
    assert a.gain_toward(vec3(0, 0, 0)) == pytest.approx(1.0)
