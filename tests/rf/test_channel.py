"""Channel simulator tests against hand-built scenes."""

import numpy as np
import pytest

from repro.geometry.vec import vec3
from repro.rf.antenna import Antenna
from repro.rf.channel import ChannelSimulator
from repro.rf.multipath import BlockerTrack, ScattererTrack
from repro.rf.spectrum import Spectrum


class ToyScene:
    """Minimal scene: one TX, two RX, optional scatterer/blocker."""

    def __init__(self, scatterers=(), blockers=()):
        self.tx_antenna = Antenna(vec3(0, 0, 0), name="tx")
        self.rx_antennas = (
            Antenna(vec3(1.0, 0, 0), name="rx1"),
            Antenna(vec3(1.0, 0.5, 0), name="rx2"),
        )
        self._scatterers = list(scatterers)
        self._blockers = list(blockers)

    def rx_offsets(self, times):
        return np.zeros((2, len(times), 3))

    def scatterer_tracks(self, times):
        return self._scatterers

    def blocker_tracks(self, times):
        return self._blockers


def test_los_only_phase_matches_distance():
    scene = ToyScene()
    spectrum = Spectrum(subcarrier_indices=np.array([0]))
    sim = ChannelSimulator(scene, spectrum)
    csi = sim.clean_csi(np.array([0.0]))
    lam = spectrum.carrier_wavelength_m
    assert np.angle(csi[0, 0, 0]) == pytest.approx(
        np.angle(np.exp(2j * np.pi * 1.0 / lam)), abs=1e-9
    )


def test_amplitude_falls_with_distance():
    scene = ToyScene()
    sim = ChannelSimulator(scene, Spectrum())
    csi = sim.clean_csi(np.array([0.0]))
    # rx2 is further (sqrt(1.25)) than rx1 (1.0).
    assert np.abs(csi[0, 0]).mean() > np.abs(csi[0, 1]).mean()


def test_blocked_los_attenuated_and_lengthened():
    times = np.array([0.0])
    blocker = BlockerTrack(
        "head", np.array([[0.5, 0.0, 0.0]]), 0.1, transmission=0.2
    )
    spectrum = Spectrum(subcarrier_indices=np.array([0]))
    clear = ChannelSimulator(ToyScene(), spectrum).clean_csi(times)
    blocked = ChannelSimulator(ToyScene(blockers=[blocker]), spectrum).clean_csi(times)
    # rx1's LOS passes through the sphere: attenuated.
    assert np.abs(blocked[0, 0, 0]) == pytest.approx(0.2 * np.abs(clear[0, 0, 0]), rel=1e-6)
    # And the creeping detour shifts its phase.
    assert np.angle(blocked[0, 0, 0]) != pytest.approx(np.angle(clear[0, 0, 0]), abs=1e-3)
    # rx2's LOS clears the sphere: untouched.
    np.testing.assert_allclose(blocked[0, 1], clear[0, 1], rtol=1e-9)


def test_blocker_extra_path_shifts_phase():
    times = np.array([0.0])
    spectrum = Spectrum(subcarrier_indices=np.array([0]))
    lam = spectrum.carrier_wavelength_m
    base = BlockerTrack("head", np.array([[0.5, 0.0, 0.0]]), 0.1)
    shifted = BlockerTrack(
        "head", np.array([[0.5, 0.0, 0.0]]), 0.1, extra_path_m=np.array([lam / 4])
    )
    csi_a = ChannelSimulator(ToyScene(blockers=[base]), spectrum).clean_csi(times)
    csi_b = ChannelSimulator(ToyScene(blockers=[shifted]), spectrum).clean_csi(times)
    dphi = np.angle(csi_b[0, 0, 0] * np.conj(csi_a[0, 0, 0]))
    assert dphi == pytest.approx(np.pi / 2, abs=1e-6)


def test_scatterer_adds_path():
    times = np.array([0.0])
    scat = ScattererTrack("ball", np.array([[0.5, 0.3, 0.0]]), 0.05)
    spectrum = Spectrum()
    plain = ChannelSimulator(ToyScene(), spectrum).clean_csi(times)
    with_scat = ChannelSimulator(ToyScene(scatterers=[scat]), spectrum).clean_csi(times)
    assert not np.allclose(plain, with_scat)


def test_moving_scatterer_modulates_phase():
    times = np.linspace(0, 1, 50)
    positions = np.stack(
        [np.full(50, 0.5), 0.3 + 0.02 * np.sin(2 * np.pi * times), np.zeros(50)],
        axis=1,
    )
    scat = ScattererTrack("mover", positions, 0.05)
    sim = ChannelSimulator(ToyScene(scatterers=[scat]), Spectrum())
    csi = sim.clean_csi(times)
    phases = np.angle(csi[:, 0, 0])
    assert np.std(phases) > 1e-4


def test_track_length_mismatch_rejected():
    scat = ScattererTrack("x", np.zeros((3, 3)) + [0.5, 0.3, 0.0], 0.05)
    sim = ChannelSimulator(ToyScene(scatterers=[scat]), Spectrum())
    with pytest.raises(ValueError):
        sim.clean_csi(np.linspace(0, 1, 5))


def test_measure_without_impairments_is_clean():
    sim = ChannelSimulator(ToyScene(), Spectrum())
    times = np.linspace(0, 1, 10)
    np.testing.assert_allclose(sim.measure(times), sim.clean_csi(times))


def test_invalid_blocked_attenuation():
    with pytest.raises(ValueError):
        ChannelSimulator(ToyScene(), Spectrum(), blocked_los_attenuation=1.5)
