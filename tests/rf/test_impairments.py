"""Hardware impairment tests — the properties the sanitiser relies on."""

import numpy as np
import pytest

from repro.rf.impairments import HardwareImpairments, ImpairmentConfig
from repro.rf.spectrum import Spectrum


@pytest.fixture()
def spectrum():
    return Spectrum()


def clean_csi(num_packets=50, n_rx=2, spectrum=None):
    spectrum = spectrum or Spectrum()
    rng = np.random.default_rng(0)
    csi = rng.normal(size=(num_packets, n_rx, spectrum.num_subcarriers)) + 1j * rng.normal(
        size=(num_packets, n_rx, spectrum.num_subcarriers)
    )
    return csi


def test_config_validation():
    with pytest.raises(ValueError):
        ImpairmentConfig(cfo_step_rad=-1.0)
    with pytest.raises(ValueError):
        ImpairmentConfig(sfo_drift_tau_s=0.0)


def test_cfo_common_across_antennas(spectrum):
    """The distortion applied to both RX chains must be identical —

    that is the physical fact (shared oscillator) Eq. (3) exploits."""
    imp = HardwareImpairments(
        spectrum,
        ImpairmentConfig(snr_db=200.0),  # disable thermal noise
        rng=np.random.default_rng(1),
    )
    csi = clean_csi(spectrum=spectrum)
    noisy = imp.apply(csi, np.linspace(0, 1, len(csi)))
    distortion = noisy / csi
    # Same multiplicative distortion on antenna 0 and 1.
    np.testing.assert_allclose(distortion[:, 0, :], distortion[:, 1, :], atol=1e-6)


def test_cfo_varies_packet_to_packet(spectrum):
    imp = HardwareImpairments(spectrum, rng=np.random.default_rng(2))
    beta = imp.cfo_phases(np.linspace(0, 1, 100))
    assert np.std(np.diff(beta)) > 0.1


def test_sfo_linear_in_subcarrier_index(spectrum):
    imp = HardwareImpairments(
        spectrum,
        ImpairmentConfig(cfo_step_rad=0.0, cfo_jitter_rad=0.0, snr_db=200.0),
        rng=np.random.default_rng(3),
    )
    csi = np.ones((5, 1, spectrum.num_subcarriers), dtype=complex)
    noisy = imp.apply(csi, np.linspace(0, 1, 5))
    phases = np.unwrap(np.angle(noisy[0, 0]))
    k = spectrum.subcarrier_indices.astype(float)
    # Phase error grows linearly with the signed subcarrier index.
    fit = np.polyfit(k, phases, 1)
    residual = phases - np.polyval(fit, k)
    assert np.max(np.abs(residual)) < 1e-6


def test_sfo_delays_correlated(spectrum):
    imp = HardwareImpairments(spectrum, rng=np.random.default_rng(4))
    times = np.linspace(0, 1, 200)  # 5 ms spacing << 1 s drift tau
    delays = imp.sfo_delays(times)
    step = np.std(np.diff(delays))
    assert step < 0.2 * np.std(delays)


def test_thermal_noise_scales_with_snr(spectrum):
    csi = clean_csi(spectrum=spectrum)
    times = np.linspace(0, 1, len(csi))
    errors = {}
    for snr in (10.0, 30.0):
        imp = HardwareImpairments(
            spectrum,
            ImpairmentConfig(cfo_step_rad=0.0, cfo_jitter_rad=0.0, sfo_delay_std_s=0.0, snr_db=snr),
            rng=np.random.default_rng(5),
        )
        noisy = imp.apply(csi, times)
        errors[snr] = np.mean(np.abs(noisy - csi) ** 2)
    # 20 dB SNR difference => 100x noise power difference.
    assert errors[10.0] / errors[30.0] == pytest.approx(100.0, rel=0.2)


def test_apply_shape_validation(spectrum):
    imp = HardwareImpairments(spectrum)
    with pytest.raises(ValueError):
        imp.apply(np.ones((3, 2)), np.zeros(3))
    with pytest.raises(ValueError):
        imp.apply(np.ones((3, 2, 30)), np.zeros(4))
