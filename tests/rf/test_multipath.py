"""Multipath synthesis and track-container tests."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.rf.multipath import BlockerTrack, ScattererTrack, synthesize_csi


def test_scatterer_track_scalar_rcs_broadcast():
    track = ScattererTrack("x", np.zeros((5, 3)), 0.1)
    assert track.rcs_m2.shape == (5,)
    assert len(track) == 5


def test_scatterer_track_validation():
    with pytest.raises(ValueError):
        ScattererTrack("x", np.zeros((5, 2)), 0.1)
    with pytest.raises(ValueError):
        ScattererTrack("x", np.zeros((5, 3)), np.zeros(3))
    with pytest.raises(ValueError):
        ScattererTrack("x", np.zeros((5, 3)), -1.0)


def test_blocker_blocks_vectorised():
    centers = np.array([[0.0, 0.0, 0.0], [0.0, 0.0, 5.0]])
    b = BlockerTrack("head", centers, 0.2)
    a = np.array([-1.0, 0.0, 0.0])
    c = np.array([1.0, 0.0, 0.0])
    mask = b.blocks(a, c)
    assert mask.tolist() == [True, False]


def test_blocker_extra_path_validation():
    with pytest.raises(ValueError):
        BlockerTrack("h", np.zeros((3, 3)), 0.1, extra_path_m=np.zeros(2))
    with pytest.raises(ValueError):
        BlockerTrack("h", np.zeros((3, 3)), 0.1, transmission=1.5)


def test_blocker_creeping_excess_only_when_blocked():
    centers = np.array([[0.0, 0.0, 0.0], [0.0, 0.0, 5.0]])
    b = BlockerTrack("head", centers, 0.2)
    excess = b.creeping_excess(np.array([-1.0, 0, 0]), np.array([1.0, 0, 0]))
    assert excess[0] > 0.0
    assert excess[1] == 0.0


def test_blocker_creeping_matches_scalar_helper():
    from repro.geometry.shapes import Sphere, creeping_excess

    center = np.array([0.05, 0.02, 0.01])
    b = BlockerTrack("head", center[None, :], 0.2)
    vec = b.creeping_excess(np.array([-1.0, 0, 0]), np.array([1.0, 0, 0]))
    scalar = creeping_excess(
        np.array([-1.0, 0, 0]), np.array([1.0, 0, 0]), Sphere(center, 0.2)
    )
    assert vec[0] == pytest.approx(scalar, rel=1e-9)


def test_synthesize_single_path_phase():
    lengths = np.array([[0.123], [0.123 * 1.5]])
    amps = np.ones((2, 1))
    wavelengths = np.array([0.123])
    csi = synthesize_csi(lengths, amps, wavelengths)
    # One wavelength -> phase 2pi (i.e. 0); 1.5 wavelengths -> pi.
    assert np.angle(csi[0, 0]) == pytest.approx(0.0, abs=1e-9)
    assert abs(np.angle(csi[1, 0])) == pytest.approx(np.pi, abs=1e-9)


def test_synthesize_superposition():
    wavelengths = np.array([0.1, 0.12])
    lengths = np.array([[1.0, 2.0]])
    amps = np.array([[0.5, 0.25]])
    combined = synthesize_csi(lengths, amps, wavelengths)
    one = synthesize_csi(lengths[:, :1], amps[:, :1], wavelengths)
    two = synthesize_csi(lengths[:, 1:], amps[:, 1:], wavelengths)
    np.testing.assert_allclose(combined, one + two)


def test_synthesize_amplitude_bound():
    rng = np.random.default_rng(0)
    lengths = rng.uniform(0.5, 3.0, (10, 4))
    amps = rng.uniform(0.0, 1.0, (10, 4))
    csi = synthesize_csi(lengths, amps, np.array([0.123]))
    assert np.all(np.abs(csi[:, 0]) <= amps.sum(axis=1) + 1e-12)


def test_synthesize_validation():
    with pytest.raises(ValueError):
        synthesize_csi(np.zeros((2, 3)), np.zeros((2, 2)), np.array([0.1]))
    with pytest.raises(ValueError):
        synthesize_csi(np.zeros((2, 3)), np.zeros((2, 3)), np.array([-0.1]))


@given(
    st.floats(min_value=0.1, max_value=5.0, allow_nan=False),
    st.floats(min_value=0.01, max_value=1.0, allow_nan=False),
)
@settings(max_examples=30, deadline=None)
def test_synthesize_frequency_selectivity(length, amp):
    # The same path produces different phases on different subcarriers.
    wavelengths = np.array([0.122, 0.124])
    csi = synthesize_csi(np.array([[length]]), np.array([[amp]]), wavelengths)
    expected = amp * np.exp(2j * np.pi * length / wavelengths)
    np.testing.assert_allclose(csi[0], expected, rtol=1e-9)
