"""Propagation amplitude tests."""

import numpy as np
import pytest

from repro.rf.propagation import (
    BLOCKED_LOS_ATTENUATION,
    los_amplitude,
    reflection_amplitude,
)


def test_los_inverse_distance():
    a1 = los_amplitude(1.0, 0.123)
    a2 = los_amplitude(2.0, 0.123)
    assert a1 == pytest.approx(2.0 * a2)


def test_los_scales_with_wavelength():
    assert los_amplitude(1.0, 0.2) > los_amplitude(1.0, 0.1)


def test_los_vectorised():
    d = np.array([0.5, 1.0, 2.0])
    a = los_amplitude(d, 0.123)
    assert a.shape == (3,)
    assert np.all(np.diff(a) < 0)


def test_los_validation():
    with pytest.raises(ValueError):
        los_amplitude(0.0, 0.123)
    with pytest.raises(ValueError):
        los_amplitude(1.0, -0.1)


def test_reflection_bistatic_product():
    # Amplitude falls as 1/(d1*d2).
    a = reflection_amplitude(1.0, 1.0, 0.123, 0.1)
    b = reflection_amplitude(2.0, 1.0, 0.123, 0.1)
    assert a == pytest.approx(2.0 * b)


def test_reflection_sqrt_rcs():
    a = reflection_amplitude(1.0, 1.0, 0.123, 0.04)
    b = reflection_amplitude(1.0, 1.0, 0.123, 0.01)
    assert a == pytest.approx(2.0 * b)


def test_reflection_zero_rcs_zero_amplitude():
    assert reflection_amplitude(1.0, 1.0, 0.123, 0.0) == 0.0


def test_reflection_validation():
    with pytest.raises(ValueError):
        reflection_amplitude(0.0, 1.0, 0.123, 0.1)
    with pytest.raises(ValueError):
        reflection_amplitude(1.0, 1.0, 0.123, -0.1)


def test_reflection_much_weaker_than_los():
    # A head-sized scatterer at cabin distances is well below the LOS.
    los = los_amplitude(1.0, 0.123)
    refl = reflection_amplitude(0.5, 0.5, 0.123, 0.1)
    assert refl < los


def test_blocked_attenuation_sane():
    assert 0.0 < BLOCKED_LOS_ATTENUATION < 1.0
