"""Spectrum tests."""

import numpy as np
import pytest

from repro import constants
from repro.rf.spectrum import Spectrum


def test_default_matches_intel5300():
    s = Spectrum()
    assert s.num_subcarriers == 30
    assert s.carrier_hz == pytest.approx(2.437e9)
    assert s.fft_size == 64


def test_frequencies_centered_on_carrier():
    s = Spectrum()
    freqs = s.frequencies_hz
    assert freqs.min() < s.carrier_hz < freqs.max()
    # Index spacing is the 312.5 kHz subcarrier spacing.
    k = s.subcarrier_indices
    expected = s.carrier_hz + k * constants.SUBCARRIER_SPACING_HZ
    np.testing.assert_allclose(freqs, expected)


def test_wavelengths_about_12cm():
    s = Spectrum()
    assert np.all((0.120 < s.wavelengths_m) & (s.wavelengths_m < 0.126))
    assert s.carrier_wavelength_m == pytest.approx(0.123, abs=0.001)


def test_wavelength_decreases_with_frequency():
    s = Spectrum()
    order = np.argsort(s.frequencies_hz)
    assert np.all(np.diff(s.wavelengths_m[order]) < 0)


def test_validation():
    with pytest.raises(ValueError):
        Spectrum(carrier_hz=-1.0)
    with pytest.raises(ValueError):
        Spectrum(subcarrier_indices=np.array([]))
    with pytest.raises(ValueError):
        Spectrum(subcarrier_indices=np.array([100]), fft_size=64)
    with pytest.raises(ValueError):
        Spectrum(fft_size=1)


def test_custom_grid():
    s = Spectrum(subcarrier_indices=np.array([-1, 0, 1]))
    assert s.num_subcarriers == 3
    assert s.frequencies_hz[1] == pytest.approx(s.carrier_hz)
