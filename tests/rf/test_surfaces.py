"""Image-method surface reflection tests."""

import numpy as np
import pytest

from repro.geometry.vec import vec3
from repro.rf.surfaces import (
    ReflectingPlane,
    default_cabin_surfaces,
    surface_paths,
)


def floor_plane(gamma=0.5):
    return ReflectingPlane("floor", vec3(0, 0, 1), 0.0, gamma)


def test_plane_validation():
    with pytest.raises(ValueError):
        ReflectingPlane("x", vec3(0, 0, 1), 0.0, gamma=1.5)
    with pytest.raises(ValueError):
        ReflectingPlane("x", vec3(0, 0, 0), 0.0, gamma=0.5)


def test_mirror_involution():
    plane = ReflectingPlane("tilt", vec3(1, 2, 3), 0.7, 0.5)
    rng = np.random.default_rng(0)
    points = rng.normal(size=(10, 3))
    np.testing.assert_allclose(plane.mirror(plane.mirror(points)), points, atol=1e-12)


def test_mirror_preserves_plane_points():
    plane = floor_plane()
    on_plane = vec3(3.0, -2.0, 0.0)
    np.testing.assert_allclose(plane.mirror(on_plane), on_plane, atol=1e-12)


def test_reflection_path_textbook_case():
    # TX and RX both 1 m above the floor, 2 m apart: bounce length is
    # the classic sqrt((2h)^2 + d^2).
    plane = floor_plane()
    length, gamma = plane.reflection_path(vec3(0, 0, 1), vec3(2, 0, 1))
    assert length == pytest.approx(np.sqrt(4.0 + 4.0))
    assert gamma == 0.5


def test_reflection_longer_than_direct():
    plane = floor_plane()
    tx, rx = vec3(0, 0, 0.5), vec3(1.5, 0.3, 0.8)
    length, _ = plane.reflection_path(tx, rx)
    assert length > np.linalg.norm(rx - tx)


def test_straddling_endpoints_rejected():
    plane = floor_plane()
    with pytest.raises(ValueError):
        plane.reflection_path(vec3(0, 0, 1), vec3(1, 0, -1))


def test_surface_paths_skips_unusable():
    planes = [floor_plane(), ReflectingPlane("wall", vec3(1, 0, 0), 5.0, 0.3)]
    # Both endpoints above the floor and left of the wall: both usable.
    paths = surface_paths(vec3(0, 0, 1), vec3(1, 0, 1), planes)
    assert len(paths) == 2
    # RX beyond the wall: the wall path is skipped.
    paths = surface_paths(vec3(0, 0, 1), vec3(6, 0, 1), planes)
    assert [p[0] for p in paths] == ["floor"]


def test_surface_paths_departure_is_mirror():
    plane = floor_plane()
    paths = surface_paths(vec3(0, 0, 1), vec3(2, 0, 1), [plane])
    _name, _length, _gamma, departure = paths[0]
    np.testing.assert_allclose(departure, [2, 0, -1], atol=1e-12)


def test_default_cabin_surfaces_sane():
    surfaces = default_cabin_surfaces()
    names = {s.name for s in surfaces}
    assert {"windshield", "roof", "driver-window", "passenger-window"} <= names
    # All four give usable paths between the phone and the Layout-1 RX.
    paths = surface_paths(
        np.zeros(3), np.array([1.05, 0.0, 0.33]), surfaces
    )
    assert len(paths) == 4
    # They are weak relative to a blocked LOS (dominance budget).
    from repro.rf.propagation import los_amplitude

    total = sum((g * los_amplitude(L, 0.123)) ** 2 for _n, L, g, _d in paths)
    assert np.sqrt(total) < 0.6 * 0.65 * los_amplitude(1.1, 0.123)
