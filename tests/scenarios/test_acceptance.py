"""The ISSUE acceptance run: a 50-session mixed fleet under T2 faults.

Head tracking, occupant localization and breathing sensing share one
``SessionManager`` tick loop while every injector class fires; nothing
may escape the serving layer's containment and the fleet must heal once
the fault window closes.
"""

from repro.scenarios import get_scenario, run_scenario_chaos
from repro.serve.chaos import run_chaos
from repro.serve.loadgen import ALL_WORKLOAD_KINDS


def test_fifty_session_mixed_fleet_under_t2_faults():
    spec = get_scenario("t2-downtown-interference")
    result = run_chaos(
        num_sessions=50,
        duration_s=spec.duration_s,
        rate_hz=spec.rate_hz,
        seed=spec.seed,
        plan=spec.fault_plan,
        workloads=("plain", "localize", "breathing"),
    )
    assert result.sessions == 50
    assert result.unhandled == 0
    assert result.all_healthy
    assert result.quarantines > 0  # the storm actually bit
    assert result.estimates > 0


def test_scenario_chaos_driver_runs_the_t3_flagship():
    """The registry's chaos entry point drives the full-stack pack —
    every cabin kind, batched — with the same containment guarantees."""
    spec = get_scenario("t3-rush-hour-chaos")
    assert set(spec.workload_mix) == set(ALL_WORKLOAD_KINDS)
    result = run_scenario_chaos(spec)
    assert result.unhandled == 0
    assert result.all_healthy


def test_clean_scenario_chaos_sees_no_faults():
    """T0 through the chaos driver must not inherit the default storm:
    the spec's empty plan travels verbatim."""
    result = run_scenario_chaos(get_scenario("t0-calm-commute"))
    assert result.unhandled == 0
    assert result.rejected == 0
    assert result.quarantines == 0
    assert result.injector_touches == {}
    assert result.all_healthy
