"""The scenario registry: contracts, identity and resolution."""

import dataclasses

import pytest

from repro.faults import chaos_plan
from repro.scenarios import (
    TIERS,
    ScenarioSpec,
    get_scenario,
    list_scenarios,
    register_scenario,
    resolve_scenario,
    validate_scenario,
)


def _spec(**overrides) -> ScenarioSpec:
    base = dict(
        name="unit-spec",
        tier="T0",
        description="a throwaway spec for unit tests",
        num_sessions=2,
        duration_s=2.5,
    )
    base.update(overrides)
    return ScenarioSpec(**base)


# ----------------------------------------------------------------------
# The canonical packs (ISSUE acceptance: >= 8 scenarios across T0..T3,
# every one passing contract validation).
# ----------------------------------------------------------------------
def test_catalogue_has_at_least_eight_scenarios():
    assert len(list_scenarios()) >= 8


def test_catalogue_covers_every_tier():
    tiers = {spec.tier for spec in list_scenarios()}
    assert tiers == set(TIERS)


def test_every_registered_scenario_validates():
    for spec in list_scenarios():
        assert validate_scenario(spec) == [], spec.name


def test_scenario_ids_are_unique():
    ids = [spec.scenario_id for spec in list_scenarios()]
    assert len(ids) == len(set(ids))


def test_catalogue_mixes_all_three_workload_engines():
    from repro.serve.loadgen import kind_workload

    engines = {
        kind_workload(kind)
        for spec in list_scenarios()
        for kind in spec.workload_mix
    }
    assert engines == {"head", "localize", "breathing"}


# ----------------------------------------------------------------------
# Lookup and resolution
# ----------------------------------------------------------------------
def test_get_scenario_by_name():
    spec = get_scenario("t0-calm-commute")
    assert spec.tier == "T0"


def test_get_scenario_unknown_raises_with_catalogue():
    with pytest.raises(KeyError, match="t0-calm-commute"):
        get_scenario("no-such-scenario")


def test_tier_resolves_to_flagship():
    for tier in TIERS:
        flagship = resolve_scenario(tier)
        assert flagship.tier == tier
        assert flagship is list_scenarios(tier=tier)[0]


def test_resolve_exact_name_wins():
    assert resolve_scenario("t3-stadium-egress").name == "t3-stadium-egress"


def test_list_scenarios_rejects_bad_tier():
    with pytest.raises(ValueError):
        list_scenarios(tier="T9")


# ----------------------------------------------------------------------
# Identity
# ----------------------------------------------------------------------
def test_description_does_not_change_identity():
    a = _spec()
    b = dataclasses.replace(a, description="reworded prose")
    assert a.scenario_id == b.scenario_id


def test_every_knob_changes_identity():
    base = _spec()
    for change in (
        {"seed": 99},
        {"num_sessions": 3},
        {"duration_s": 3.0},
        {"rate_hz": 50.0},
        {"workload_mix": ("breathing",)},
        {"batching": True},
        {"tier": "T2", "fault_plan": chaos_plan(seed=1, start_s=0.5, stop_s=1.0)},
    ):
        other = dataclasses.replace(base, **change)
        assert other.scenario_id != base.scenario_id, change


def test_identity_is_stable_across_processes():
    """The id is a pure function of the spec — pin one value so an
    accidental serialization change cannot slip through."""
    spec = ScenarioSpec(name="pinned", tier="T0", description="x")
    assert spec.scenario_id == spec.scenario_id
    assert len(spec.scenario_id) == 12
    assert spec.identity()["fault_injectors"] == []


# ----------------------------------------------------------------------
# Contract validation
# ----------------------------------------------------------------------
def test_valid_spec_has_no_problems():
    assert validate_scenario(_spec()) == []


@pytest.mark.parametrize(
    "overrides, needle",
    [
        ({"name": "Bad Name"}, "kebab-case"),
        ({"tier": "T7"}, "tier"),
        ({"num_sessions": 0}, "num_sessions"),
        ({"duration_s": 0.0}, "duration_s"),
        ({"buffer_s": 1.0}, "buffer_s"),
        ({"workload_mix": ()}, "workload_mix"),
        ({"workload_mix": ("plain", "submarine")}, "unknown workload"),
        ({"churn_fraction": 1.5}, "churn_fraction"),
    ],
)
def test_sanity_contract_violations(overrides, needle):
    problems = validate_scenario(_spec(**overrides))
    assert any(needle in p for p in problems), problems


def test_t0_rejects_faults_and_churn():
    plan = chaos_plan(seed=3, start_s=0.5, stop_s=1.0)
    problems = validate_scenario(_spec(fault_plan=plan, churn_fraction=0.2))
    assert any("fault plan" in p for p in problems)
    assert any("churn" in p for p in problems)


def test_t2_requires_faults():
    problems = validate_scenario(_spec(tier="T2"))
    assert any("must carry a fault plan" in p for p in problems)


def test_t3_requires_faults_churn_and_mixed_engines():
    problems = validate_scenario(_spec(tier="T3"))
    joined = " ".join(problems)
    assert "fault plan" in joined
    assert "churn" in joined
    assert "two distinct workload engines" in joined


def test_t3_full_contract_passes():
    spec = _spec(
        tier="T3",
        fault_plan=chaos_plan(seed=5, start_s=0.5, stop_s=1.0),
        churn_fraction=0.2,
        workload_mix=("plain", "breathing"),
        num_sessions=5,
    )
    assert validate_scenario(spec) == []


def test_fault_window_must_fit_the_run():
    plan = chaos_plan(seed=3, start_s=0.5, stop_s=9.0)  # run is 2.5 s
    problems = validate_scenario(_spec(tier="T2", fault_plan=plan))
    assert any("0 <= start < stop <= duration_s" in p for p in problems)


# ----------------------------------------------------------------------
# Registration
# ----------------------------------------------------------------------
def test_register_rejects_invalid_spec():
    with pytest.raises(ValueError, match="invalid"):
        register_scenario(_spec(tier="T2"))  # T2 without faults


def test_register_is_idempotent_for_identical_specs():
    existing = get_scenario("t0-calm-commute")
    assert register_scenario(existing) is existing
    clone = dataclasses.replace(existing)
    register_scenario(clone)
    assert get_scenario("t0-calm-commute") is existing


def test_register_rejects_name_collision_with_different_identity():
    existing = get_scenario("t0-calm-commute")
    imposter = dataclasses.replace(existing, seed=existing.seed + 1)
    with pytest.raises(ValueError, match="different identity"):
        register_scenario(imposter)
