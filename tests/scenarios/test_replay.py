"""The replay guarantee: same spec, same bits.

Every registered scenario — including the faulted T2 packs and the
churning T3 packs — is run twice from its declared seed; the captured
per-session estimate streams must be bit-identical and the serving
counters equal.  The budget override keeps wall-clock noise out of the
scheduler so the comparison pins values, not timing.
"""

import dataclasses

import pytest

from repro.scenarios import list_scenarios, run_scenario
from repro.serve.loadgen import estimates_identical


def _shrunk(spec):
    """The registered spec at CI scale with a generous budget: wall-time
    can never defer a session in one run but not the other."""
    return dataclasses.replace(spec, budget_s=30.0)


def _capture(spec):
    capture = max(spec.num_sessions - spec.churn_sessions, 1)
    return run_scenario(spec, capture_sessions=capture)


@pytest.mark.parametrize(
    "name", [spec.name for spec in list_scenarios()]
)
def test_scenario_replay_is_bit_identical(name):
    spec = _shrunk(
        next(s for s in list_scenarios() if s.name == name)
    )
    first = _capture(spec)
    second = _capture(spec)

    assert set(first.captured) == set(second.captured)
    assert len(first.captured) >= 1
    for session_id, log_a in first.captured.items():
        log_b = second.captured[session_id]
        assert len(log_a) == len(log_b), session_id
        for (t_a, e_a), (t_b, e_b) in zip(log_a, log_b):
            assert t_a == t_b, f"{session_id}: poll instants diverged"
            assert estimates_identical(e_a, e_b), (
                f"{session_id} @ t={t_a}: {e_a} != {e_b}"
            )

    assert first.packets == second.packets
    assert first.estimates == second.estimates
    assert first.drops == second.drops
    assert first.deadline_misses == second.deadline_misses
    assert first.churned_sessions == second.churned_sessions


def test_clean_scenarios_verify_against_standalone_replay():
    """Fault-free, churn-free scenarios also pass the loadgen
    standalone-replay probe (served == fresh OnlineTracker)."""
    clean = [
        spec for spec in list_scenarios()
        if not spec.fault_plan.enabled and spec.churn_sessions == 0
    ]
    assert clean, "catalogue lost its clean scenarios"
    for spec in clean:
        result = run_scenario(_shrunk(spec))
        assert result.verified_sessions > 0, spec.name
        assert result.bit_identical, spec.name


def test_churning_scenarios_actually_churn():
    churny = [s for s in list_scenarios() if s.churn_fraction > 0]
    assert churny, "catalogue lost its churning scenarios"
    for spec in churny:
        result = run_scenario(_shrunk(spec))
        assert result.churned_sessions == spec.churn_sessions > 0, spec.name
