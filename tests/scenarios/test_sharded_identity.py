"""The tentpole pin: sharded serving is bit-identical to one manager.

The same scenario spec is replayed twice — once through a single
in-process :class:`~repro.serve.manager.SessionManager`, once through a
4-worker :class:`~repro.serve.fabric.ServingFabric` — and the captured
per-session estimate streams must match bit for bit, fault storm
included.  Sharding may only change *where* a tracker runs, never what
it computes.

Two scales: the 50-session ``t2-sharded-rush`` pack runs the fabric
inline (``processes=False`` — same code path minus the transport, fast
enough for every CI run), and the T2 flagship runs with real forked
worker processes to pin the transport too.
"""

import dataclasses

import pytest

from repro.scenarios import list_scenarios, run_scenario
from repro.serve.loadgen import estimates_identical


def _spec(name):
    spec = next(s for s in list_scenarios() if s.name == name)
    # Generous budget: wall-clock noise must never defer a session in
    # one run but not the other (same override as the replay suite).
    return dataclasses.replace(spec, budget_s=30.0)


def _assert_captures_identical(single, sharded):
    assert set(single.captured) == set(sharded.captured)
    assert len(single.captured) >= 1
    polls = 0
    estimates = 0
    for session_id, log_a in single.captured.items():
        log_b = sharded.captured[session_id]
        assert len(log_a) == len(log_b), session_id
        for (t_a, e_a), (t_b, e_b) in zip(log_a, log_b):
            polls += 1
            estimates += e_a is not None
            assert t_a == t_b, f"{session_id}: poll instants diverged"
            assert estimates_identical(e_a, e_b), (
                f"{session_id} @ t={t_a}: {e_a} != {e_b}"
            )
    assert polls > 0 and estimates > 0, "capture is vacuous"
    assert single.packets == sharded.packets
    assert single.estimates == sharded.estimates
    assert single.deadline_misses == sharded.deadline_misses


@pytest.mark.parametrize("workers", [4])
def test_sharded_rush_pack_identical_across_worker_counts(workers):
    spec = _spec("t2-sharded-rush")
    assert spec.num_sessions == 50
    assert spec.fault_plan.enabled  # identity must hold under faults
    capture = spec.num_sessions
    single = run_scenario(spec, capture_sessions=capture)
    sharded = run_scenario(
        spec, capture_sessions=capture, workers=workers, processes=False
    )
    assert sharded.workers == workers
    _assert_captures_identical(single, sharded)


def test_flagship_identical_through_forked_workers():
    spec = _spec("t2-downtown-interference")
    capture = spec.num_sessions
    single = run_scenario(spec, capture_sessions=capture)
    sharded = run_scenario(
        spec, capture_sessions=capture, workers=4, processes=True
    )
    _assert_captures_identical(single, sharded)
