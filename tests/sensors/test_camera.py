"""Camera tracker tests: frame rate, blur, lighting, drops."""

import numpy as np
import pytest

from repro.cabin.driver import scan_trajectory
from repro.cabin.scene import CabinScene
from repro.sensors.camera import CameraConfig, CameraTracker


def scanning_scene(speed_deg=110.0):
    return CabinScene(
        driver_yaw_trajectory=scan_trajectory(
            20.0, speed_rad_s=np.deg2rad(speed_deg)
        )
    )


def test_config_validation():
    with pytest.raises(ValueError):
        CameraConfig(frame_rate_hz=0.0)
    with pytest.raises(ValueError):
        CameraConfig(drop_probability=1.5)
    with pytest.raises(ValueError):
        CameraConfig(light_level=0.0)


def test_frame_rate_30fps():
    tracker = CameraTracker(CabinScene(), rng=np.random.default_rng(0))
    stream = tracker.yaw_stream(0.0, 10.0)
    assert len(stream) == pytest.approx(300, abs=2)


def test_daylight_still_head_accuracy():
    tracker = CameraTracker(CabinScene(), rng=np.random.default_rng(1))
    stream = tracker.yaw_stream(0.0, 10.0)
    err = np.rad2deg(np.abs(np.asarray(stream.values)))
    assert np.median(err) < 3.0


def test_blur_grows_error_with_speed():
    slow_scene = scanning_scene(40.0)
    fast_scene = scanning_scene(160.0)
    cfg = CameraConfig(drop_probability=0.0)
    errs = {}
    for name, scene in (("slow", slow_scene), ("fast", fast_scene)):
        tracker = CameraTracker(scene, cfg, rng=np.random.default_rng(2))
        stream = tracker.yaw_stream(0.0, 20.0)
        truth = scene.driver_yaw(stream.times)
        errs[name] = np.median(np.abs(np.asarray(stream.values) - truth))
    assert errs["fast"] > errs["slow"]


def test_night_worse_than_day():
    scene = scanning_scene()
    day = CameraTracker(scene, CameraConfig(light_level=1.0), rng=np.random.default_rng(3))
    night = CameraTracker(scene, CameraConfig(light_level=0.2), rng=np.random.default_rng(3))
    day_err = np.abs(np.asarray(day.yaw_stream(0, 20).values) - scene.driver_yaw(day.yaw_stream(0, 20).times))
    night_stream = night.yaw_stream(0, 20)
    night_err = np.abs(np.asarray(night_stream.values) - scene.driver_yaw(night_stream.times))
    assert np.median(night_err) > np.median(day_err)


def test_fast_turns_drop_frames():
    scene = scanning_scene(200.0)
    config = CameraConfig(drop_speed_rad_s=np.deg2rad(160.0), drop_probability=0.9)
    tracker = CameraTracker(scene, config, rng=np.random.default_rng(4))
    stream = tracker.yaw_stream(0.0, 20.0)
    nominal = 20.0 * config.frame_rate_hz
    assert len(stream) < 0.9 * nominal


def test_estimate_at_uses_latest_frame():
    scene = CabinScene()
    tracker = CameraTracker(scene, rng=np.random.default_rng(5))
    estimate = tracker.estimate_at(1.0)
    assert abs(np.rad2deg(estimate)) < 10.0


def test_empty_span_rejected():
    tracker = CameraTracker(CabinScene())
    with pytest.raises(ValueError):
        tracker.yaw_stream(1.0, 0.5)
