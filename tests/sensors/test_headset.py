"""Ground-truth headset tests."""

import numpy as np
import pytest

from repro.cabin.driver import scan_trajectory
from repro.cabin.scene import CabinScene
from repro.sensors.headset import HeadsetConfig, HeadsetTracker


def scanning_scene():
    return CabinScene(driver_yaw_trajectory=scan_trajectory(20.0))


def test_config_validation():
    with pytest.raises(ValueError):
        HeadsetConfig(rate_hz=0.0)
    with pytest.raises(ValueError):
        HeadsetConfig(slip_duration_s=0.0)


def test_tracks_truth_closely_without_slip():
    scene = scanning_scene()
    tracker = HeadsetTracker(
        scene, HeadsetConfig(slip_rate_per_min=0.0), rng=np.random.default_rng(0)
    )
    stream = tracker.yaw_stream(0.0, 20.0)
    truth = scene.driver_yaw(stream.times)
    err = np.rad2deg(np.abs(np.asarray(stream.values) - truth))
    assert np.median(err) < 1.5
    assert err.max() < 5.0


def test_noise_magnitude_matches_config():
    scene = CabinScene()  # still head
    config = HeadsetConfig(noise_std_rad=np.deg2rad(2.0), slip_rate_per_min=0.0)
    tracker = HeadsetTracker(scene, config, rng=np.random.default_rng(1))
    stream = tracker.yaw_stream(0.0, 30.0)
    assert np.std(np.asarray(stream.values)) == pytest.approx(
        config.noise_std_rad, rel=0.15
    )


def test_slips_create_rare_outliers_not_bias():
    scene = scanning_scene()
    config = HeadsetConfig(slip_rate_per_min=6.0, noise_std_rad=np.deg2rad(0.5))
    tracker = HeadsetTracker(scene, config, rng=np.random.default_rng(2))
    stream = tracker.yaw_stream(0.0, 20.0)
    truth = scene.driver_yaw(stream.times)
    err = np.rad2deg(np.abs(np.asarray(stream.values) - truth))
    # Outliers exist but the bulk is clean.
    assert err.max() > 5.0
    assert np.median(err) < 2.0
    assert np.mean(err > 5.0) < 0.3


def test_sampling_rate():
    tracker = HeadsetTracker(CabinScene(), rng=np.random.default_rng(3))
    stream = tracker.yaw_stream(0.0, 1.0)
    assert len(stream) == pytest.approx(120, abs=2)


def test_empty_span_rejected():
    tracker = HeadsetTracker(CabinScene())
    with pytest.raises(ValueError):
        tracker.yaw_stream(2.0, 2.0)
