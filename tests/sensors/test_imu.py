"""Phone IMU tests."""

import numpy as np
import pytest

from repro.cabin.scene import CabinScene
from repro.cabin.steering import turning_trajectory
from repro.sensors.imu import ImuConfig, PhoneImu


def test_config_validation():
    with pytest.raises(ValueError):
        ImuConfig(rate_hz=0.0)
    with pytest.raises(ValueError):
        ImuConfig(gyro_noise_std=-1.0)


def test_stream_rate_and_span():
    scene = CabinScene()
    imu = PhoneImu(scene, ImuConfig(rate_hz=100.0), rng=np.random.default_rng(0))
    stream = imu.yaw_rate_stream(0.0, 2.0)
    assert len(stream) == 200
    assert stream.start == pytest.approx(0.0)


def test_straight_driving_reads_near_zero():
    scene = CabinScene()  # no steering trajectory -> car goes straight
    imu = PhoneImu(scene, rng=np.random.default_rng(1))
    stream = imu.yaw_rate_stream(0.0, 5.0)
    assert abs(np.mean(np.asarray(stream.values))) < 0.02
    assert np.std(np.asarray(stream.values)) < 0.05


def test_turns_visible_above_noise():
    scene = CabinScene(
        steering_trajectory=turning_trajectory(
            20.0, np.random.default_rng(2), turns_per_minute=12.0
        )
    )
    imu = PhoneImu(scene, rng=np.random.default_rng(3))
    stream = imu.yaw_rate_stream(0.0, 20.0)
    true_rate = scene.car_yaw_rate(stream.times)
    assert np.abs(true_rate).max() > 0.1
    # Readings track the true rate well above the noise floor.
    corr = np.corrcoef(np.asarray(stream.values), true_rate)[0, 1]
    assert corr > 0.9


def test_bias_constant_per_instance():
    scene = CabinScene()
    imu = PhoneImu(scene, ImuConfig(gyro_bias_std=0.01), rng=np.random.default_rng(4))
    assert imu.bias == imu.bias
    other = PhoneImu(scene, ImuConfig(gyro_bias_std=0.01), rng=np.random.default_rng(5))
    assert imu.bias != other.bias


def test_empty_span_rejected():
    imu = PhoneImu(CabinScene())
    with pytest.raises(ValueError):
        imu.yaw_rate_stream(1.0, 1.0)
