"""Fleet-batched scheduling: a perf toggle, never a behaviour change.

The acceptance property of the batched execution path
(:class:`repro.serve.batch.BatchedScheduler` +
:meth:`repro.core.engine.EstimationEngine.estimate_batch`): a mixed
50-session fleet — plain CSI, forecasting, camera-backed steering
fallback, and IMU-fused cabins — served with batching on produces
*bit-identical* estimate streams and identical deferral/deadline
accounting to the same fleet served sequentially, both fault-free and
under a :func:`~repro.faults.chaos_plan` fault storm.

The budget is deliberately generous (``budget_s=30``) so wall-clock
noise can never defer a session in one run but not the other — the
comparison then pins *values*, with deferral counts asserted equal
(both zero) rather than merely plausible.
"""

from dataclasses import replace

import pytest

from repro.core.config import ViHOTConfig
from repro.faults import chaos_plan
from repro.serve import SessionManager
from repro.serve.batch import BatchPlanner
from repro.serve.chaos import run_chaos
from repro.serve.loadgen import (
    SYNTHETIC_FINGERPRINT,
    WORKLOAD_KINDS,
    SyntheticCabin,
    SyntheticCamera,
    estimates_identical,
    run_load,
    synthetic_profile,
)
from repro.serve.session import DEGRADED, HEALTHY

FLEET = 50
DURATION_S = 2.5
RATE_HZ = 100.0
SEED = 5


def _run(batching: bool, plan=None) -> object:
    return run_load(
        num_sessions=FLEET,
        duration_s=DURATION_S,
        rate_hz=RATE_HZ,
        budget_s=30.0,  # everything fits: scheduling must not perturb output
        verify_sessions=0 if plan is not None else len(WORKLOAD_KINDS),
        capture_sessions=FLEET,
        workload_mix=True,
        batching=batching,
        seed=SEED,
        plan=plan,
    )


@pytest.fixture(scope="module")
def mixed_runs():
    """The mixed 50-cabin fleet, served sequentially and batched."""
    return _run(batching=False), _run(batching=True)


@pytest.fixture(scope="module")
def chaos_runs():
    """The same fleet under a mid-run fault storm, both schedulers."""
    plan = chaos_plan(seed=SEED, start_s=0.8, stop_s=1.5)
    return _run(batching=False, plan=plan), _run(batching=True, plan=plan)


def _assert_identical_streams(seq, bat):
    assert set(seq.captured) == set(bat.captured)
    assert len(seq.captured) == FLEET
    for session_id, seq_log in seq.captured.items():
        bat_log = bat.captured[session_id]
        assert len(seq_log) == len(bat_log), (
            f"{session_id}: {len(seq_log)} sequential polls vs "
            f"{len(bat_log)} batched"
        )
        for (seq_t, seq_e), (bat_t, bat_e) in zip(seq_log, bat_log):
            assert seq_t == bat_t, f"{session_id}: poll instants diverged"
            assert estimates_identical(seq_e, bat_e), (
                f"{session_id} @ t={seq_t}: batched {bat_e} != sequential {seq_e}"
            )


def test_batched_run_actually_batches(mixed_runs):
    seq, bat = mixed_runs
    assert seq.batched_sessions == 0
    assert bat.batched_sessions > 0, "batching on but no stacked calls ran"
    # Camera cabins (a quarter of the mixed fleet) must stay on the
    # sequential fallback path.
    assert bat.fallback_sessions > 0


def test_mixed_fleet_streams_bit_identical(mixed_runs):
    seq, bat = mixed_runs
    _assert_identical_streams(seq, bat)


def test_mixed_fleet_matches_standalone_replay(mixed_runs):
    """Both schedulers also equal a fresh ``OnlineTracker`` replay for
    one probe cabin of every workload kind."""
    seq, bat = mixed_runs
    assert seq.verified_sessions == len(WORKLOAD_KINDS)
    assert bat.verified_sessions == len(WORKLOAD_KINDS)
    assert seq.bit_identical
    assert bat.bit_identical


def test_mixed_fleet_accounting_identical(mixed_runs):
    seq, bat = mixed_runs
    assert bat.estimates == seq.estimates
    assert bat.drops == seq.drops
    assert bat.deferrals == seq.deferrals == 0
    assert bat.deadline_misses == seq.deadline_misses


def test_fleet_produced_estimates(mixed_runs):
    seq, _bat = mixed_runs
    assert seq.estimates > FLEET  # every cabin produced at least a few


def test_chaos_streams_bit_identical(chaos_runs):
    """Fault injection is deterministic in (seed, stream id), so the
    batched and sequential runs see identical corrupted streams — and
    must still serve identical values, with degraded sessions silently
    dropping to the fallback path."""
    seq, bat = chaos_runs
    _assert_identical_streams(seq, bat)


def test_chaos_accounting_identical(chaos_runs):
    seq, bat = chaos_runs
    assert bat.estimates == seq.estimates
    assert bat.drops == seq.drops
    assert bat.deferrals == seq.deferrals == 0
    assert bat.deadline_misses == seq.deadline_misses


def test_chaos_containment_holds_under_batching():
    """The chaos runner's containment/recovery guarantees are scheduler
    independent: nothing escapes, and the fleet heals."""
    result = run_chaos(num_sessions=20, duration_s=2.0, batching=True, seed=SEED)
    assert result.unhandled == 0
    assert result.all_healthy
    assert result.quarantines > 0  # the storm actually bit


# ----------------------------------------------------------------------
# BatchPlanner unit behaviour
# ----------------------------------------------------------------------
@pytest.fixture()
def planner_fleet():
    """A small manager whose sessions exercise every planner rule."""
    config = ViHOTConfig(profile_stride=8, num_length_candidates=3)
    profile = synthetic_profile()
    manager = SessionManager(config, batching=True)
    for name in ("plain-a", "plain-b", "plain-c"):
        manager.open_session(
            name, fingerprint=SYNTHETIC_FINGERPRINT, build_profile=lambda: profile
        )
    manager.open_session(
        "cam",
        fingerprint=SYNTHETIC_FINGERPRINT,
        build_profile=lambda: profile,
        camera=SyntheticCamera(seed=1),
    )
    manager.open_session(
        "forecast",
        fingerprint=SYNTHETIC_FINGERPRINT,
        build_profile=lambda: profile,
        config=replace(config, horizon_s=0.1),
    )
    return manager


def test_planner_groups_interchangeable_sessions(planner_fleet):
    planner = BatchPlanner()
    sessions = [planner_fleet.session(n) for n in ("plain-a", "plain-b", "plain-c")]
    keys = {planner.group_key(s) for s in sessions}
    assert len(keys) == 1 and None not in keys
    groups = planner.plan(sessions)
    assert len(groups) == 1
    assert groups[0].batched
    assert [s.session_id for s in groups[0].sessions] == [
        "plain-a",
        "plain-b",
        "plain-c",
    ]


def test_planner_excludes_camera_sessions(planner_fleet):
    planner = BatchPlanner()
    cam = planner_fleet.session("cam")
    assert planner.group_key(cam) is None
    groups = planner.plan([planner_fleet.session("plain-a"), cam])
    assert [(g.batched, len(g.sessions)) for g in groups] == [
        (False, 1),
        (False, 1),
    ]


def test_planner_excludes_degraded_sessions(planner_fleet):
    planner = BatchPlanner()
    sick = planner_fleet.session("plain-a")
    assert planner.group_key(sick) is not None
    sick.health.record_faults(sick.health.policy.degrade_after)
    assert sick.health.state == DEGRADED
    assert planner.group_key(sick) is None
    groups = planner.plan(
        [sick, planner_fleet.session("plain-b"), planner_fleet.session("plain-c")]
    )
    assert groups[0].batched is False  # the degraded leader rides alone
    assert groups[0].sessions[0].session_id == "plain-a"
    assert groups[1].batched  # the healthy pair still stacks
    assert len(groups[1].sessions) == 2


def test_planner_groups_forecast_with_plain_siblings(planner_fleet):
    """A horizon-only config override shares the plain siblings' group:
    the key normalizes ``horizon_s`` away, and the planned batch carries
    both sessions (each batch item brings its own engine, so the
    forecast session keeps its horizon inside the stacked call)."""
    planner = BatchPlanner()
    plain = planner_fleet.session("plain-a")
    forecast = planner_fleet.session("forecast")
    assert forecast.health.state == HEALTHY
    key_plain = planner.group_key(plain)
    key_forecast = planner.group_key(forecast)
    assert key_plain is not None and key_forecast is not None
    assert key_plain == key_forecast
    groups = planner.plan([plain, forecast])
    assert len(groups) == 1
    assert groups[0].batched
    assert [s.session_id for s in groups[0].sessions] == ["plain-a", "forecast"]


def test_planner_still_splits_non_horizon_overrides(planner_fleet):
    """Config differences beyond the forecast horizon still split: a
    different match window is a genuinely different candidate bank."""
    planner = BatchPlanner()
    plain = planner_fleet.session("plain-a")
    key_plain = planner.group_key(plain)
    assert key_plain is not None
    base = plain.tracker.engine.config
    other = SessionManager(
        replace(base, window_s=2 * base.window_s), stride_s=0.1
    ).open_session("wide", profile=plain.tracker.engine.profile)
    key_other = planner.group_key(other)
    assert key_other is not None
    assert key_plain != key_other


def test_planner_preserves_rotation_order(planner_fleet):
    """Group order follows the first member's rotation position, so the
    budget cutoff stays round-robin fair."""
    planner = BatchPlanner()
    rotated = [
        planner_fleet.session("cam"),
        planner_fleet.session("plain-b"),
        planner_fleet.session("plain-c"),
        planner_fleet.session("plain-a"),
    ]
    groups = planner.plan(rotated)
    assert [g.batched for g in groups] == [False, True]
    assert [s.session_id for s in groups[1].sessions] == [
        "plain-b",
        "plain-c",
        "plain-a",
    ]


def test_batch_metrics_and_tick_report():
    """A live batched manager reports stacked calls in both the tick
    report and the metrics registry."""
    config = ViHOTConfig(profile_stride=8, num_length_candidates=3)
    profile = synthetic_profile()
    manager = SessionManager(config, batching=True, budget_s=30.0, stride_s=0.1)
    assert manager.batching
    cabins = [
        SyntheticCabin(f"m-{k}", seed=40 + k, duration_s=1.5) for k in range(4)
    ]
    for cabin in cabins:
        manager.open_session(
            cabin.cabin_id,
            fingerprint=SYNTHETIC_FINGERPRINT,
            build_profile=lambda: profile,
        )
    saw_batch = False
    next_tick = 0.1
    for k in range(len(cabins[0])):
        t = float(cabins[0].times[k])
        for cabin in cabins:
            manager.ingest(cabin.cabin_id, t, cabin.csi_at(k))
        if t >= next_tick:
            report = manager.tick().scheduler
            next_tick += 0.1
            if report.batched_groups:
                saw_batch = True
                assert report.batched_sessions == sum(report.batch_sizes)
                assert all(size >= 2 for size in report.batch_sizes)
    assert saw_batch
    counters = manager.metrics_snapshot()["counters"]
    assert counters["batch_groups"] > 0
    assert counters["sessions_batched"] >= 2 * counters["batch_groups"]
    assert manager.metrics.histogram("batch_size").count > 0


def test_sequential_manager_reports_no_batches():
    config = ViHOTConfig(profile_stride=8, num_length_candidates=3)
    manager = SessionManager(config)
    assert not manager.batching
    report = manager.tick().scheduler
    assert report.batched_groups == 0
    assert report.batch_sizes == ()
