"""The chaos scenario at acceptance scale, plus the off-by-default
bit-identity property of the fault wrapper."""

import numpy as np

from repro.faults import FaultPlan, FaultWindow, PacketLossBurst, chaos_plan
from repro.serve import run_chaos, run_load
from repro.serve.session import HEALTHY

INJECTOR_NAMES = {
    "packet_loss",
    "csi_dropout",
    "subcarrier_corruption",
    "clock_skew",
    "amplitude_fade",
    "queue_surge",
}


def test_chaos_fleet_contained_and_recovers():
    """50 sessions through every injector: zero unhandled exceptions,
    real degradation, full recovery once the faults clear."""
    result = run_chaos(num_sessions=50, duration_s=3.0, rate_hz=100.0, seed=0)

    # 1. Containment.
    assert result.unhandled == 0
    assert result.sessions == 50

    # 2. The faults actually bit, and the metrics say so.
    assert set(result.injector_touches) == INJECTOR_NAMES
    assert all(count > 0 for count in result.injector_touches.values())
    assert result.rejected > 0
    assert result.quarantines > 0
    assert result.releases > 0
    assert result.estimates > 0
    for needle in (
        "packets_rejected=",
        "quarantines_total=",
        "quarantine_releases=",
        "recoveries_total=",
        "health_quarantined=",
        "health_degraded=",
    ):
        assert needle in result.metrics_line

    # 3. Recovery: every session healthy after the window closed.
    assert result.all_healthy
    assert result.final_health[HEALTHY] == 50
    assert result.recoveries > 0
    assert result.metrics_line.count("health_quarantined=0") == 1


def test_chaos_is_deterministic():
    a = run_chaos(num_sessions=5, duration_s=2.5, rate_hz=100.0, seed=11)
    b = run_chaos(num_sessions=5, duration_s=2.5, rate_hz=100.0, seed=11)
    keys = (
        "packets_offered", "ingested", "rejected", "drops", "estimates",
        "poll_failures", "quarantines", "releases", "recoveries",
        "unhandled", "injector_touches", "final_health",
    )
    da, db = a.as_dict(), b.as_dict()
    for key in keys:
        assert da[key] == db[key], key


def test_chaos_different_seeds_differ():
    a = run_chaos(num_sessions=4, duration_s=2.5, rate_hz=100.0, seed=1)
    b = run_chaos(num_sessions=4, duration_s=2.5, rate_hz=100.0, seed=2)
    assert a.injector_touches != b.injector_touches


def test_empty_plan_is_bit_identical_to_no_plan():
    """With injectors disabled, run_load through the plan parameter is
    the same code path — and the standalone bit-identity check holds."""
    scale = dict(num_sessions=2, duration_s=2.0, rate_hz=100.0,
                 verify_sessions=1, seed=3)
    base = run_load(**scale)
    empty = run_load(**scale, plan=FaultPlan())
    assert base.bit_identical
    assert empty.bit_identical
    stream_keys = ("sessions", "packets", "estimates", "drops",
                   "deferrals", "deadline_misses")
    da, db = base.as_dict(), empty.as_dict()
    for key in stream_keys:
        assert da[key] == db[key], key


def test_run_load_with_faults_skips_verification():
    plan = FaultPlan(
        injectors=(
            PacketLossBurst(drop_rate=0.3, burst_mean=4.0,
                            window=FaultWindow(0.5, 1.5)),
        ),
        seed=0,
    )
    result = run_load(num_sessions=2, duration_s=2.0, rate_hz=100.0,
                      verify_sessions=1, seed=3, plan=plan)
    assert result.verified_sessions == 0
    assert result.bit_identical  # vacuously: nothing compared
    # Fewer packets arrived than the pristine run offers.
    assert result.packets < 2 * int(np.ceil(2.0 * 100.0))


def test_chaos_plan_catalogue_is_complete():
    plan = chaos_plan(seed=0)
    assert {spec.name for spec in plan.injectors} == INJECTOR_NAMES
    assert plan.enabled
