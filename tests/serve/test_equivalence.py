"""The serving layer's core contract: routing never changes tracking.

An estimate produced through ``SessionManager`` must be bit-identical
to the same packets pushed into a standalone ``OnlineTracker`` and
polled at the same instants — for the real simulated-cabin pipeline
(the session fixtures of ``tests/conftest.py``), not just synthetic
load.  Three concurrent sessions ingest interleaved copies of the same
capture so cross-session interference (shared queue, shared scheduler,
shared engine config) would be caught.
"""

import numpy as np
import pytest

from repro.core.online import OnlineTracker
from repro.serve import SessionManager
from repro.serve.loadgen import estimates_identical


@pytest.fixture(scope="module")
def served_and_standalone(small_profile, runtime_stream):
    stream, _scene = runtime_stream
    ids = ("car-a", "car-b", "car-c")
    manager = SessionManager(
        budget_s=30.0,  # everything fits: scheduling must not perturb output
        stride_s=0.1,
        buffer_s=10.0,
    )
    for session_id in ids:
        manager.open_session(session_id, small_profile, fingerprint="same-cabin")

    polled = {session_id: [] for session_id in ids}
    for k in range(len(stream)):
        t = float(stream.times[k])
        for session_id in ids:
            manager.ingest(session_id, t, stream.csi[k])
        if k % 10 == 9:
            report = manager.tick()
            for served in report.scheduler.served:
                polled[served.session_id].append((served.polled_t, served.estimate))
    report = manager.tick()
    for served in report.scheduler.served:
        polled[served.session_id].append((served.polled_t, served.estimate))

    # Standalone replay: same packets, polls at the same instants.
    standalone = {}
    for session_id in ids:
        tracker = OnlineTracker(small_profile, manager.session(session_id).tracker.config)
        produced = []
        poll = 0
        times = [t for t, _ in polled[session_id]]
        for k in range(len(stream)):
            t = float(stream.times[k])
            tracker.push_csi(t, stream.csi[k])
            while poll < len(times) and times[poll] <= t + 1e-12:
                produced.append(tracker.estimate(times[poll]))
                poll += 1
        standalone[session_id] = produced
    return ids, polled, standalone


def test_sessions_produced_estimates(served_and_standalone):
    ids, polled, _standalone = served_and_standalone
    for session_id in ids:
        estimates = [e for _, e in polled[session_id] if e is not None]
        assert len(estimates) > 10, f"{session_id} produced too few estimates"


def test_served_estimates_bit_identical_to_standalone(served_and_standalone):
    ids, polled, standalone = served_and_standalone
    for session_id in ids:
        served = [e for _, e in polled[session_id]]
        replayed = standalone[session_id]
        assert len(served) == len(replayed)
        for a, b in zip(replayed, served):
            assert estimates_identical(a, b), (
                f"{session_id}: served {b} != standalone {a}"
            )


def test_concurrent_sessions_identical_to_each_other(served_and_standalone):
    """Same packets, same profile, same config => same outputs, despite
    sharing one queue and one scheduler."""
    ids, polled, _standalone = served_and_standalone
    reference = polled[ids[0]]
    for session_id in ids[1:]:
        assert len(polled[session_id]) == len(reference)
        for (ta, ea), (tb, eb) in zip(reference, polled[session_id]):
            assert ta == tb
            assert estimates_identical(ea, eb)


def test_modes_cover_real_tracking(served_and_standalone):
    ids, polled, _standalone = served_and_standalone
    modes = {e.mode for _, e in polled[ids[0]] if e is not None}
    assert "csi" in modes or "init" in modes


def test_estimates_accurate_against_truth(small_profile, runtime_stream,
                                          served_and_standalone):
    """The served estimates still track the actual head (sanity against
    the scene ground truth, like the online-tracker tests)."""
    _stream, scene = runtime_stream
    ids, polled, _standalone = served_and_standalone
    estimates = [e for _, e in polled[ids[0]] if e is not None]
    times = np.array([e.target_time for e in estimates])
    values = np.array([e.orientation for e in estimates])
    truth = scene.driver_yaw(times)
    err = np.abs(np.rad2deg(values - truth))
    assert np.median(err[times > 2.5]) < 10.0
