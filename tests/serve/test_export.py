"""Prometheus text exposition: naming, labels, quantiles, ordering."""

from __future__ import annotations

from repro.serve.export import render_prometheus
from repro.serve.metrics import MetricsRegistry


def _snapshot() -> dict:
    registry = MetricsRegistry()
    registry.counter("packets_ingested").inc(42)
    registry.counter("vihot_sessions_opened_vihot_head_total").inc(3)
    registry.gauge("sessions_live").set(5)
    hist = registry.histogram("estimate_latency_ms")
    for value in (1.0, 2.0, 3.0, 10.0):
        hist.observe(value)
    return registry.as_dict()


def test_single_snapshot_renders_unlabelled() -> None:
    text = render_prometheus(_snapshot())
    lines = text.splitlines()
    assert text.endswith("\n")
    assert "vihot_packets_ingested_total 42" in lines
    assert "vihot_sessions_live 5" in lines
    assert "# TYPE vihot_packets_ingested_total counter" in lines
    assert "# TYPE vihot_sessions_live gauge" in lines
    assert "# TYPE vihot_estimate_latency_ms summary" in lines
    # Names already carrying the prefix / suffix are not doubled.
    assert "vihot_sessions_opened_vihot_head_total 3" in lines
    assert not any("vihot_vihot" in line for line in lines)
    assert not any("_total_total" in line for line in lines)


def test_histogram_exports_quantiles_max_and_count() -> None:
    lines = render_prometheus(_snapshot()).splitlines()
    for quantile in ("0.5", "0.9", "0.99", "0.999"):
        assert any(
            line.startswith(f'vihot_estimate_latency_ms{{quantile="{quantile}"}}')
            for line in lines
        ), quantile
    assert "vihot_estimate_latency_ms_max 10" in lines
    assert "vihot_estimate_latency_ms_count 4" in lines


def test_sharded_rendering_labels_fleet_and_shards() -> None:
    fleet = _snapshot()
    shards = {0: _snapshot(), 3: _snapshot()}
    lines = render_prometheus(fleet, shards).splitlines()
    assert 'vihot_packets_ingested_total{shard="fleet"} 42' in lines
    assert 'vihot_packets_ingested_total{shard="0"} 42' in lines
    assert 'vihot_packets_ingested_total{shard="3"} 42' in lines
    # One family header covers fleet and shard samples alike.
    assert (
        sum(1 for line in lines if line == "# TYPE vihot_sessions_live gauge")
        == 1
    )
    assert any(
        line.startswith('vihot_estimate_latency_ms{shard="3",quantile="0.5"}')
        for line in lines
    )


def test_stage_stats_export_with_stage_label() -> None:
    snapshot = {
        "counters": {},
        "gauges": {},
        "histograms": {},
        "stages": [
            {"stage": "match", "evaluated": 10, "fired": 4, "terminal": 2,
             "p50_ms": 1.25, "p90_ms": 2.5},
        ],
    }
    lines = render_prometheus(snapshot).splitlines()
    assert 'vihot_stage_evaluated_total{stage="match"} 10' in lines
    assert 'vihot_stage_fired_total{stage="match"} 4' in lines
    assert 'vihot_stage_terminal_total{stage="match"} 2' in lines
    assert 'vihot_stage_p50_ms{stage="match"} 1.25' in lines
    assert 'vihot_stage_p90_ms{stage="match"} 2.5' in lines


def test_empty_histogram_renders_nan_not_crash() -> None:
    registry = MetricsRegistry()
    registry.histogram("estimate_latency_ms")
    lines = render_prometheus(registry.as_dict()).splitlines()
    assert 'vihot_estimate_latency_ms{quantile="0.5"} NaN' in lines
    assert "vihot_estimate_latency_ms_count 0" in lines


def test_families_sorted_by_name() -> None:
    lines = render_prometheus(_snapshot()).splitlines()
    type_lines = [line for line in lines if line.startswith("# TYPE ")]
    names = [line.split()[2] for line in type_lines]
    assert names == sorted(names)
