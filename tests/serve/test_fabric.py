"""The sharded serving fabric: bit-identity, stealing, failover, merge.

The load-bearing pin lives in
``test_inline_fabric_bit_identical_to_single_manager``: a 4-worker
fabric fed the same packets as one in-process
:class:`~repro.serve.manager.SessionManager` must serve a bit-identical
estimate stream — sharding adds routing and transport, never tracking
behaviour.  (The full 50-session chaos-pack identity gate runs at the
scenario tier; this suite pins the mechanism at unit scale.)
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.config import ViHOTConfig
from repro.serve.fabric import ServingFabric, merge_snapshots
from repro.serve.loadgen import (
    SYNTHETIC_FINGERPRINT,
    SyntheticCabin,
    estimates_identical,
    synthetic_profile,
)
from repro.serve.manager import SessionManager

CONFIG = ViHOTConfig(profile_stride=8, num_length_candidates=3)
PROFILE = synthetic_profile()
MANAGER_KWARGS = dict(
    budget_s=1.0, stride_s=0.25, idle_timeout_s=100.0, buffer_s=6.0
)


def _cabins(n: int, duration_s: float = 2.0) -> list[SyntheticCabin]:
    return [
        SyntheticCabin(
            f"cabin-{k:04d}", seed=k, duration_s=duration_s, rate_hz=100.0
        )
        for k in range(n)
    ]


def _drive(manager, cabins, tick_interval_s: float = 0.05):
    """Lockstep replay; returns every served (sid, polled_t, estimate)."""
    for cabin in cabins:
        manager.open_session(
            cabin.cabin_id,
            fingerprint=SYNTHETIC_FINGERPRINT,
            build_profile=lambda: PROFILE,
        )
    served = []
    next_tick = tick_interval_s
    for k in range(len(cabins[0].times)):
        t = float(cabins[0].times[k])
        for cabin in cabins:
            manager.ingest(cabin.cabin_id, t, cabin.csi_at(k))
        if t >= next_tick:
            report = manager.tick()
            served.extend(
                (s.session_id, s.polled_t, s.estimate)
                for s in report.scheduler.served
            )
            next_tick += tick_interval_s
    report = manager.tick()
    served.extend(
        (s.session_id, s.polled_t, s.estimate)
        for s in report.scheduler.served
    )
    return served


def _assert_streams_identical(base, other) -> None:
    assert len(base) == len(other)
    key = lambda row: (row[0], row[1])  # noqa: E731
    for (sid_a, t_a, e_a), (sid_b, t_b, e_b) in zip(
        sorted(base, key=key), sorted(other, key=key)
    ):
        assert sid_a == sid_b and t_a == t_b
        assert estimates_identical(e_a, e_b), (sid_a, t_a, e_a, e_b)


def test_inline_fabric_bit_identical_to_single_manager() -> None:
    cabins = _cabins(12)
    single = SessionManager(CONFIG, **MANAGER_KWARGS)
    base = _drive(single, cabins)
    assert base, "replay produced no estimates — test is vacuous"
    with ServingFabric(
        CONFIG, workers=4, processes=False, **MANAGER_KWARGS
    ) as fabric:
        got = _drive(fabric, cabins)
        assert len(fabric) == len(cabins)
        counters = fabric.metrics_snapshot()["counters"]
    _assert_streams_identical(base, got)
    assert counters["packets_ingested"] == len(cabins) * len(cabins[0].times)
    assert counters["estimates_served"] == sum(
        1 for _, _, e in got if e is not None
    )


def test_process_fabric_bit_identical_to_single_manager() -> None:
    cabins = _cabins(8)
    single = SessionManager(CONFIG, **MANAGER_KWARGS)
    base = _drive(single, cabins)
    assert base
    with ServingFabric(
        CONFIG, workers=4, processes=True, **MANAGER_KWARGS
    ) as fabric:
        got = _drive(fabric, cabins)
    _assert_streams_identical(base, got)


def test_sessions_pin_to_their_hashed_shard() -> None:
    with ServingFabric(
        CONFIG, workers=4, processes=False, **MANAGER_KWARGS
    ) as fabric:
        for cabin in _cabins(6):
            shard = fabric.open_session(
                cabin.cabin_id,
                fingerprint=SYNTHETIC_FINGERPRINT,
                build_profile=lambda: PROFILE,
            )
            assert shard == fabric.shard_of(cabin.cabin_id)
            assert shard == fabric.router.route(cabin.cabin_id)
        with pytest.raises(ValueError):
            fabric.open_session("cabin-0000")  # double open


def test_profile_cache_is_fleet_wide() -> None:
    # One fingerprint, many sessions across many shards: the profile is
    # built exactly once, parent-side.
    builds = 0

    def build():
        nonlocal builds
        builds += 1
        return PROFILE

    with ServingFabric(
        CONFIG, workers=4, processes=False, **MANAGER_KWARGS
    ) as fabric:
        for cabin in _cabins(10):
            fabric.open_session(
                cabin.cabin_id,
                fingerprint=SYNTHETIC_FINGERPRINT,
                build_profile=build,
            )
        counters = fabric.metrics_snapshot()["counters"]
    assert builds == 1
    assert counters["profile_cache_misses"] == 1
    assert counters["profile_cache_hits"] == 9


def test_close_session_and_estimates_routes() -> None:
    cabins = _cabins(6)
    with ServingFabric(
        CONFIG, workers=3, processes=False, **MANAGER_KWARGS
    ) as fabric:
        _drive(fabric, cabins)
        merged = fabric.estimates()
        assert set(merged) == {c.cabin_id for c in cabins}
        history = fabric.estimates(cabins[0].cabin_id)
        assert isinstance(history, tuple) and history
        states = fabric.health_states()
        assert set(states) == {c.cabin_id for c in cabins}
        latest = fabric.close_session(cabins[0].cabin_id)
        assert estimates_identical(latest, merged[cabins[0].cabin_id])
        assert len(fabric) == len(cabins) - 1
        with pytest.raises(KeyError):
            fabric.close_session(cabins[0].cabin_id)
        with pytest.raises(KeyError):
            fabric.ingest_imu("nobody", 0.0, 0.0)


def test_work_stealing_grants_unused_quota_to_hot_shard() -> None:
    with ServingFabric(
        CONFIG,
        workers=3,
        processes=False,
        ring_slots=8,
        drain_records_per_tick=4,
        **MANAGER_KWARGS,
    ) as fabric:
        # Find a session id on each shard, then flood exactly one shard.
        by_shard: dict[int, str] = {}
        k = 0
        while len(by_shard) < 3:
            sid = f"cabin-{k:04d}"
            by_shard.setdefault(fabric.router.route(sid), sid)
            k += 1
        hot_shard, hot_sid = next(iter(sorted(by_shard.items())))
        fabric.open_session(
            hot_sid,
            fingerprint=SYNTHETIC_FINGERPRINT,
            build_profile=lambda: PROFILE,
        )
        packet = np.zeros((2, 30), dtype=np.complex128)
        for j in range(8):  # fill the hot ring to 100%
            fabric.ingest(hot_sid, 0.001 * j, packet)
        report = fabric.tick()
        counters = fabric.metrics_snapshot()["counters"]
        # Base quota is 4; the two idle shards donated 4 each, and the
        # hot shard needed 4 more — so the whole backlog drained in one
        # tick instead of two.
        assert report.ingested == 8
        assert counters["work_steals_total"] == 1
        assert counters["records_stolen_total"] == 4
        # Without stealing the second half would still be queued:
        assert len(fabric._shards[hot_shard].ring) == 0


def test_tick_quota_override_without_stealing() -> None:
    # ring_slots=16 keeps fill below the high-water mark, so the
    # override is a plain per-shard quota with no donated grants.
    with ServingFabric(
        CONFIG, workers=2, processes=False, ring_slots=16, **MANAGER_KWARGS
    ) as fabric:
        fabric.open_session(
            "cabin-0000",
            fingerprint=SYNTHETIC_FINGERPRINT,
            build_profile=lambda: PROFILE,
        )
        packet = np.zeros((2, 30), dtype=np.complex128)
        for j in range(6):
            fabric.ingest("cabin-0000", 0.001 * j, packet)
        assert fabric.tick(max_records=2).ingested == 2
        assert fabric.tick().ingested == 4  # default: drain everything
        counters = fabric.metrics_snapshot()["counters"]
        assert counters["work_steals_total"] == 0


def test_kill_worker_rehashes_sessions_and_keeps_serving() -> None:
    cabins = _cabins(10)
    with ServingFabric(
        CONFIG, workers=4, processes=False, **MANAGER_KWARGS
    ) as fabric:
        _drive(fabric, cabins)
        placement_before = {
            c.cabin_id: fabric.shard_of(c.cabin_id) for c in cabins
        }
        victim = placement_before[cabins[0].cabin_id]
        expected_orphans = {
            sid for sid, shard in placement_before.items() if shard == victim
        }
        orphans = fabric.kill_worker(victim)
        assert set(orphans) == expected_orphans
        assert victim not in fabric.router
        # Survivors keep their placement (minimal rehash)...
        for sid, shard in placement_before.items():
            if sid not in expected_orphans:
                assert fabric.shard_of(sid) == shard
        # ...and the whole fleet, orphans included, keeps serving.
        tail = [
            SyntheticCabin(c.cabin_id, seed=9000 + i, duration_s=2.0, rate_hz=100.0)
            for i, c in enumerate(cabins)
        ]
        for k in range(len(tail[0].times)):
            t = 2.0 + float(tail[0].times[k])
            for cabin in tail:
                fabric.ingest(cabin.cabin_id, t, cabin.csi_at(k))
        report = fabric.tick()
        served_sids = {s.session_id for s in report.scheduler.served}
        assert expected_orphans & served_sids, "orphans never served again"
        counters = fabric.metrics_snapshot()["counters"]
        assert counters["shard_failovers_total"] == 1
        assert counters["sessions_rehashed_total"] == len(expected_orphans)
        with pytest.raises(ValueError):
            fabric.kill_worker(victim)  # already dead


def test_kill_worker_process_mode() -> None:
    cabins = _cabins(6)
    with ServingFabric(
        CONFIG, workers=2, processes=True, **MANAGER_KWARGS
    ) as fabric:
        for cabin in cabins:
            fabric.open_session(
                cabin.cabin_id,
                fingerprint=SYNTHETIC_FINGERPRINT,
                build_profile=lambda: PROFILE,
            )
        victim = fabric.router.shards[0]
        orphans = fabric.kill_worker(victim)
        survivor = fabric.router.shards[0]
        assert all(fabric.shard_of(sid) == survivor for sid in orphans)
        assert set(fabric.health_states()) == {c.cabin_id for c in cabins}
        with pytest.raises(ValueError):
            fabric.kill_worker(survivor)  # never kill the last shard


def test_kill_worker_mid_stream_releases_all_segments() -> None:
    """Failover must not leak shared memory: kill a forked worker in the
    middle of its stream, keep serving, shut down — and every segment
    the fabric ever acquired must be gone from the kernel (attaching by
    name raises FileNotFoundError)."""
    from multiprocessing import shared_memory

    from repro.analysis import process_contracts

    was_active = process_contracts.active()
    if not was_active:
        process_contracts.activate()
    before = len(process_contracts.records())
    try:
        cabins = _cabins(8)
        fabric = ServingFabric(CONFIG, workers=4, processes=True, **MANAGER_KWARGS)
        try:
            for cabin in cabins:
                fabric.open_session(
                    cabin.cabin_id,
                    fingerprint=SYNTHETIC_FINGERPRINT,
                    build_profile=lambda: PROFILE,
                )
            half = len(cabins[0].times) // 2
            for k in range(half):
                t = float(cabins[0].times[k])
                for cabin in cabins:
                    fabric.ingest(cabin.cabin_id, t, cabin.csi_at(k))
            fabric.tick()
            victim = fabric.router.shards[0]
            orphans = fabric.kill_worker(victim)
            assert orphans, "kill hit an empty shard — pick a livelier victim"
            for k in range(half, len(cabins[0].times)):
                t = float(cabins[0].times[k])
                for cabin in cabins:
                    fabric.ingest(cabin.cabin_id, t, cabin.csi_at(k))
            fabric.tick()
        finally:
            fabric.close()
        acquired = {
            e.name
            for e in process_contracts.records()[before:]
            if e.kind == "acquire"
        }
        assert len(acquired) == 4, "expected one ring per worker"
        process_contracts.assert_balanced()
        for name in acquired:
            with pytest.raises(FileNotFoundError):
                shared_memory.SharedMemory(name=name)
    finally:
        if not was_active:
            process_contracts.deactivate()
            process_contracts.clear_records()


def test_merge_snapshots_sums_and_merges() -> None:
    worker_a = {
        "counters": {"packets_ingested": 3, "estimates_served": 1},
        "gauges": {"sessions_live": 2.0},
        "histograms": {"estimate_latency_ms": {"count": 1, "p50": 5.0}},
        "stages": [
            {"stage": "match", "evaluated": 4, "fired": 2, "terminal": 1,
             "p50_ms": 1.0, "p90_ms": 2.0},
        ],
    }
    worker_b = {
        "counters": {"packets_ingested": 5},
        "gauges": {"sessions_live": 3.0},
        "stages": [
            {"stage": "match", "evaluated": 6, "fired": 1, "terminal": 0,
             "p50_ms": 3.0, "p90_ms": 1.5},
            {"stage": "sanitize", "evaluated": 2, "fired": 2, "terminal": 0,
             "p50_ms": 0.1, "p90_ms": 0.2},
        ],
    }
    parent = {
        "counters": {"packets_dropped": 7},
        "gauges": {"fabric_shards": 2.0},
        "histograms": {"estimate_latency_ms": {"count": 9, "p50": 4.0}},
    }
    merged = merge_snapshots([worker_a, worker_b], parent)
    assert merged["counters"] == {
        "estimates_served": 1,
        "packets_dropped": 7,
        "packets_ingested": 8,
    }
    assert merged["gauges"] == {"fabric_shards": 2.0, "sessions_live": 5.0}
    # Histograms come from the parent only — per-shard percentiles
    # cannot be merged, so the fleet observes them parent-side.
    assert merged["histograms"] == {"estimate_latency_ms": {"count": 9, "p50": 4.0}}
    stages = {s["stage"]: s for s in merged["stages"]}
    assert stages["match"]["evaluated"] == 10
    assert stages["match"]["fired"] == 3
    assert stages["match"]["p50_ms"] == 3.0  # worst shard wins
    assert stages["match"]["p90_ms"] == 2.0
    assert list(stages) == ["match", "sanitize"]


def test_fabric_validation() -> None:
    with pytest.raises(ValueError):
        ServingFabric(CONFIG, workers=0, processes=False)
    with pytest.raises(ValueError):
        ServingFabric(
            CONFIG,
            workers=2,
            processes=False,
            steal_low_water=0.9,
            steal_high_water=0.5,
        )


def test_close_is_idempotent() -> None:
    fabric = ServingFabric(CONFIG, workers=2, processes=False, **MANAGER_KWARGS)
    fabric.close()
    fabric.close()
