"""Graceful degradation: the health machine, ingest rejection, poll
containment, quarantine backoff and recovery."""

import numpy as np
import pytest

from repro.core.config import ViHOTConfig
from repro.serve import SessionManager
from repro.serve.loadgen import SyntheticCabin, synthetic_profile
from repro.serve.session import (
    DEGRADED,
    HEALTHY,
    QUARANTINED,
    HealthPolicy,
    SessionHealth,
)

FAST = ViHOTConfig(profile_stride=8, num_length_candidates=3)

NAN_CSI = np.full((2, 30), complex(float("nan"), float("nan")), dtype=np.complex128)


@pytest.fixture(scope="module")
def profile():
    return synthetic_profile()


def make_manager(**kwargs):
    kwargs.setdefault("budget_s", 10.0)
    kwargs.setdefault("stride_s", 0.25)
    kwargs.setdefault("buffer_s", 6.0)
    return SessionManager(FAST, **kwargs)


# ----------------------------------------------------------------------
# SessionHealth unit behaviour
# ----------------------------------------------------------------------
def test_health_machine_transitions():
    health = SessionHealth()  # degrade_after=1, quarantine_after=3
    assert health.state == HEALTHY
    health.record_faults()
    assert health.state == DEGRADED
    health.record_faults(2)  # consecutive total hits quarantine_after
    assert health.state == QUARANTINED
    assert health.quarantines == 1
    assert health.cooldown_ticks == 2  # first backoff = backoff_ticks

    # Faults while quarantined are counted but change nothing.
    health.record_faults(10)
    assert health.state == QUARANTINED
    assert health.fault_events == 13

    # The cooldown burns down tick by tick, then releases to probation.
    assert not health.tick()
    assert health.tick()
    assert health.state == DEGRADED
    assert health.releases == 1

    # One clean poll (probation_successes=1) restores healthy.
    health.record_success()
    assert health.state == HEALTHY
    assert health.recoveries == 1


def test_success_resets_consecutive_faults():
    health = SessionHealth(HealthPolicy(degrade_after=2, quarantine_after=5))
    health.record_faults()
    health.record_success()
    assert health.state == HEALTHY
    assert health.consecutive_faults == 0
    # The streak must now restart from zero.
    health.record_faults()
    assert health.state == HEALTHY


def test_backoff_grows_exponentially_and_caps():
    health = SessionHealth()  # backoff 2, factor 2.0, cap 8
    cooldowns = []
    for _ in range(4):
        health.record_faults(3)
        cooldowns.append(health.cooldown_ticks)
        while health.state == QUARANTINED:
            health.tick()
    assert cooldowns == [2, 4, 8, 8]


def test_probation_faults_restart_the_count():
    health = SessionHealth(HealthPolicy(probation_successes=2))
    health.record_faults(3)
    while health.state == QUARANTINED:
        health.tick()
    health.record_success()
    health.record_faults()  # fault mid-probation
    health.record_success()
    assert health.state == DEGRADED, "probation must restart after a fault"
    health.record_success()
    assert health.state == HEALTHY


def test_policy_validation():
    with pytest.raises(ValueError):
        HealthPolicy(degrade_after=0)
    with pytest.raises(ValueError):
        HealthPolicy(backoff_ticks=0)
    with pytest.raises(ValueError):
        HealthPolicy(probation_successes=0)


def test_tick_outside_quarantine_is_noop():
    health = SessionHealth()
    assert not health.tick()
    assert health.state == HEALTHY


# ----------------------------------------------------------------------
# Manager integration: rejection, containment, recovery
# ----------------------------------------------------------------------
def test_nonfinite_packets_rejected_and_quarantine(profile):
    manager = make_manager()
    manager.open_session("car-0", profile)
    manager.ingest("car-0", 0.00, np.ones((2, 30), dtype=np.complex128))
    manager.tick()
    session = manager.session("car-0")
    assert session.health.state == HEALTHY

    # One tick of NaN CSI plus a non-finite stamp: all rejected, none
    # reach the tracker, and the batch quarantines the session.
    manager.ingest("car-0", 0.01, NAN_CSI)
    manager.ingest("car-0", 0.02, NAN_CSI)
    manager.ingest("car-0", float("inf"), np.ones((2, 30), dtype=np.complex128))
    packets_before = session.packets
    report = manager.tick()
    assert report.rejected == 3
    assert report.quarantined == ("car-0",)
    assert session.packets == packets_before  # nothing reached the tracker
    assert session.rejected_packets == 3
    assert session.health.state == QUARANTINED
    assert not session.pending(), "quarantine must suspend polling"

    counters = manager.metrics_snapshot()["counters"]
    assert counters["packets_rejected"] == 3
    assert counters["quarantines_total"] == 1
    assert manager.metrics.gauge("health_quarantined").value == 1
    assert manager.health_states() == {"car-0": QUARANTINED}


def test_poll_exception_contained_and_quarantines(profile):
    manager = make_manager(stride_s=0.05)
    cabin = SyntheticCabin("car-0", seed=3, duration_s=4.0, rate_hz=100.0)
    manager.open_session("car-0", profile)
    session = manager.session("car-0")

    def boom():
        raise RuntimeError("tracker wedged")

    session.poll_estimate = boom  # type: ignore[method-assign]

    failures = 0
    k = 0
    # Stream in half-second chunks so the session is pending every tick.
    while session.health.state != QUARANTINED and k < len(cabin):
        for _ in range(50):
            if k >= len(cabin):
                break
            manager.ingest("car-0", float(cabin.times[k]), cabin.csi_at(k))
            k += 1
        report = manager.tick()  # must not raise
        failures += len(report.poll_failures)

    assert session.health.state == QUARANTINED
    assert failures == 3  # degrade on the 1st, quarantine on the 3rd
    assert session.poll_failures == 3
    counters = manager.metrics_snapshot()["counters"]
    assert counters["poll_failures"] == 3
    assert counters["quarantines_total"] == 1

    # Fix the tracker, keep streaming: the backoff expires, the session
    # is released to probation, and the next clean poll recovers it.
    del session.poll_estimate
    released = recovered = False
    for _ in range(8):
        for _ in range(50):
            if k >= len(cabin):
                break
            manager.ingest("car-0", float(cabin.times[k]), cabin.csi_at(k))
            k += 1
        report = manager.tick()
        released = released or "car-0" in report.released
        recovered = recovered or "car-0" in report.recovered
        if recovered:
            break
    assert released and recovered
    assert session.health.state == HEALTHY
    counters = manager.metrics_snapshot()["counters"]
    assert counters["quarantine_releases"] == 1
    assert counters["recoveries_total"] == 1
    assert manager.metrics.gauge("health_quarantined").value == 0
    assert manager.metrics.gauge("health_degraded").value == 0


def test_one_bad_session_does_not_kill_the_tick(profile):
    manager = make_manager(stride_s=0.05)
    cabins = [
        SyntheticCabin(f"car-{k}", seed=10 + k, duration_s=2.0, rate_hz=100.0)
        for k in range(3)
    ]
    for cabin in cabins:
        manager.open_session(cabin.cabin_id, profile)

    def boom():
        raise RuntimeError("wedged")

    manager.session("car-1").poll_estimate = boom  # type: ignore[method-assign]

    for k in range(len(cabins[0])):
        for cabin in cabins:
            manager.ingest(cabin.cabin_id, float(cabin.times[k]), cabin.csi_at(k))
        if (k + 1) % 25 == 0:
            manager.tick()
    manager.tick()

    # The healthy sessions kept producing estimates throughout.
    assert manager.session("car-0").estimates_produced > 0
    assert manager.session("car-2").estimates_produced > 0
    # The wedged one was contained (degraded or quarantined, possibly
    # mid-retry when the stream ended) and produced nothing.
    bad = manager.session("car-1")
    assert bad.health.state in (DEGRADED, QUARANTINED)
    assert bad.poll_failures >= 3
    assert bad.estimates_produced == 0
    assert manager.session("car-0").health.state == HEALTHY


def test_custom_policy_reaches_sessions(profile):
    policy = HealthPolicy(degrade_after=2, quarantine_after=10)
    manager = make_manager(health_policy=policy)
    manager.open_session("car-0", profile)
    assert manager.session("car-0").health.policy is policy
    manager.ingest("car-0", 0.0, NAN_CSI)
    manager.tick()
    # One fault < degrade_after=2: still healthy under the lax policy.
    assert manager.session("car-0").health.state == HEALTHY
