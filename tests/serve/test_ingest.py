"""Ingest queue: ordering, bounded depth, drop-oldest backpressure."""

import numpy as np
import pytest

from repro.serve.ingest import IngestQueue


def csi(tag: float) -> np.ndarray:
    return np.full((2, 30), tag, dtype=np.complex128)


def test_push_drain_preserves_arrival_order():
    queue = IngestQueue(depth=16)
    for k in range(10):
        queue.push(f"s{k % 3}", 0.01 * k, csi(k))
    batch = queue.drain()
    assert len(batch) == 10
    assert [r.time for r in batch] == pytest.approx([0.01 * k for k in range(10)])
    assert len(queue) == 0


def test_by_session_groups_in_order():
    queue = IngestQueue(depth=16)
    for k in range(9):
        queue.push(f"s{k % 3}", 0.01 * k, csi(k))
    groups = queue.drain().by_session()
    assert set(groups) == {"s0", "s1", "s2"}
    for records in groups.values():
        times = [r.time for r in records]
        assert times == sorted(times)


def test_drop_oldest_backpressure():
    queue = IngestQueue(depth=4)
    assert all(queue.push("a", float(k), csi(k)) for k in range(4))
    # Fifth packet sheds the oldest (t=0), not the newcomer.
    assert not queue.push("b", 4.0, csi(4))
    assert queue.dropped_total == 1
    assert queue.dropped_by_session == {"a": 1}
    batch = queue.drain()
    assert [r.time for r in batch] == [1.0, 2.0, 3.0, 4.0]
    assert queue.pushed_total == 5


def test_drain_partial_keeps_remainder():
    queue = IngestQueue(depth=8)
    for k in range(6):
        queue.push("a", float(k), csi(k))
    first = queue.drain(max_records=4)
    assert [r.time for r in first] == [0.0, 1.0, 2.0, 3.0]
    assert len(queue) == 2
    rest = queue.drain()
    assert [r.time for r in rest] == [4.0, 5.0]


def test_ring_wraps_across_many_cycles():
    queue = IngestQueue(depth=3)
    drained = []
    for k in range(50):
        queue.push("a", float(k), csi(k))
        if k % 2:
            drained.extend(r.time for r in queue.drain(max_records=1))
    # No drops: 25 drains of 1 + final depth-3 backlog never exceeded 3.
    times = drained + [r.time for r in queue.drain()]
    assert times == sorted(times)
    assert queue.dropped_total + len(times) == 50


def test_depth_validation():
    with pytest.raises(ValueError):
        IngestQueue(depth=0)


def test_forget_session_prunes_shed_bookkeeping():
    queue = IngestQueue(depth=2)
    for k in range(5):
        queue.push("a", float(k), csi(k))
    for k in range(4):
        queue.push("b", float(k), csi(k))
    assert set(queue.dropped_by_session) == {"a", "b"}
    total_before = queue.dropped_total

    queue.forget_session("a")
    assert "a" not in queue.dropped_by_session
    assert "b" in queue.dropped_by_session
    # Aggregates are history, not per-session state: unaffected.
    assert queue.dropped_total == total_before
    assert queue.pushed_total == 9
    # Forgetting an unknown session is a no-op, not an error.
    queue.forget_session("never-seen")


def test_fill_fraction_tracks_occupancy():
    queue = IngestQueue(depth=8)
    assert queue.fill_fraction == 0.0
    for k in range(6):
        queue.push("s", float(k), csi(k))
    assert queue.fill_fraction == pytest.approx(0.75)
    queue.drain(max_records=4)
    assert queue.fill_fraction == pytest.approx(0.25)
    # Shedding keeps occupancy saturated at 1.0, never above.
    for k in range(20):
        queue.push("s", float(k), csi(k))
    assert queue.fill_fraction == 1.0


def test_drop_attribution_under_multi_tenant_churn():
    # Tenants with very different offered rates share one ring: sheds
    # must land on whoever owned the oldest queued packet at that
    # moment, so a chatty tenant's backlog absorbs the drops while a
    # quiet one queued behind it stays accountable only for its own.
    queue = IngestQueue(depth=4)
    for k in range(4):
        queue.push("chatty", float(k), csi(k))
    # Quiet tenant arrives at a full ring: the shed packets are all
    # chatty's (they are the oldest), not the quiet pusher's.
    queue.push("quiet", 4.0, csi(4))
    queue.push("quiet", 5.0, csi(5))
    assert queue.dropped_by_session == {"chatty": 2}
    # Now chatty returns and starts shedding the queue head again —
    # which by now is partly quiet's traffic.
    queue.push("chatty", 6.0, csi(6))
    queue.push("chatty", 7.0, csi(7))
    queue.push("chatty", 8.0, csi(8))
    assert queue.dropped_by_session == {"chatty": 4, "quiet": 1}
    assert queue.dropped_total == 5
    # The survivors are exactly the 4 freshest packets, in order.
    assert [r.time for r in queue.drain()] == [5.0, 6.0, 7.0, 8.0]


def test_forget_session_midstream_does_not_disturb_other_tenants():
    # A close/evict in a busy fleet: the departing tenant's shed
    # bookkeeping vanishes, its queued packets still drain (the manager
    # counts those as orphaned), and other tenants' attribution,
    # ordering and occupancy are untouched.
    queue = IngestQueue(depth=4)
    for k in range(6):
        queue.push("leaver", float(k), csi(k))
    for k in range(6, 8):
        queue.push("stayer", float(k), csi(k))
    assert queue.dropped_by_session == {"leaver": 4}
    depth_before = len(queue)

    queue.forget_session("leaver")
    assert queue.dropped_by_session == {}
    assert len(queue) == depth_before  # queued packets not purged
    # Reopening the same id starts attribution from zero.
    for k in range(8, 13):
        queue.push("leaver", float(k), csi(k))
    assert queue.dropped_by_session["leaver"] >= 1
    batch = queue.drain()
    assert [r.time for r in batch] == sorted(r.time for r in batch)
