"""SessionManager: fleet lifecycle, profile cache, idle policy, metrics."""

import numpy as np
import pytest

from repro.core.config import ViHOTConfig
from repro.serve import SessionManager, scenario_fingerprint
from repro.serve.loadgen import SyntheticCabin, synthetic_profile
from repro.serve.session import EVICTED, IDLE, LIVE

FAST = ViHOTConfig(profile_stride=8, num_length_candidates=3)


class ManualClock:
    def __init__(self) -> None:
        self.now = 0.0

    def advance(self, dt: float) -> None:
        self.now += dt

    def __call__(self) -> float:
        return self.now


@pytest.fixture(scope="module")
def profile():
    return synthetic_profile()


def make_manager(profile=None, **kwargs):
    kwargs.setdefault("budget_s", 10.0)
    kwargs.setdefault("stride_s", 0.25)
    kwargs.setdefault("buffer_s", 6.0)
    return SessionManager(FAST, **kwargs)


def stream_cabin(manager, cabin, tick_every=20):
    """Ingest a whole cabin, ticking periodically; returns tick reports."""
    reports = []
    for k in range(len(cabin)):
        manager.ingest(cabin.cabin_id, float(cabin.times[k]), cabin.csi_at(k))
        if (k + 1) % tick_every == 0:
            reports.append(manager.tick())
    reports.append(manager.tick())
    return reports


def test_open_ingest_estimate_close(profile):
    manager = make_manager()
    cabin = SyntheticCabin("car-1", seed=1, duration_s=3.0, rate_hz=100.0)
    manager.open_session("car-1", profile)
    stream_cabin(manager, cabin)

    assert manager.session("car-1").state == LIVE
    latest = manager.estimates()["car-1"]
    assert latest is not None
    history = manager.estimates("car-1")
    assert history and history[-1] == latest

    final = manager.close_session("car-1")
    assert final == latest
    assert manager.session("car-1").state == EVICTED
    assert len(manager) == 0


def test_duplicate_open_rejected(profile):
    manager = make_manager()
    manager.open_session("car-1", profile)
    with pytest.raises(ValueError):
        manager.open_session("car-1", profile)
    # After eviction the id may be reused.
    manager.close_session("car-1")
    manager.open_session("car-1", profile)


def test_profile_cache_shares_across_fleet(profile):
    manager = make_manager()
    builds = []

    def build():
        builds.append(1)
        return profile

    for k in range(5):
        manager.open_session(f"car-{k}", fingerprint="cabin-type-A",
                             build_profile=build)
    assert len(builds) == 1, "identical cabins must share one profiling pass"
    assert manager.profile_cache.hits == 4
    trackers = {id(manager.session(f"car-{k}").tracker.engine.profile)
                for k in range(5)}
    assert len(trackers) == 1
    counters = manager.metrics_snapshot()["counters"]
    assert counters["profile_cache_hits"] == 4
    assert counters["profile_cache_misses"] == 1


def test_explicit_profile_populates_cache(profile):
    manager = make_manager()
    manager.open_session("car-0", profile, fingerprint="type-B")
    # Next session hits the cache without a builder.
    manager.open_session("car-1", fingerprint="type-B")
    assert manager.session("car-1").tracker is not None


def test_missing_profile_leaves_session_created(profile):
    manager = make_manager()
    session = manager.open_session("car-0", fingerprint="never-built")
    assert session.state == "created"
    assert session.tracker is None


def test_scenario_fingerprint_keys_profiling_knobs():
    from repro.experiments.scenarios import ScenarioConfig

    base = ScenarioConfig(seed=3)
    same_runtime_diff = ScenarioConfig(seed=3, runtime_motion="glance")
    diff_driver = ScenarioConfig(seed=3, driver="B")
    assert scenario_fingerprint(base) == scenario_fingerprint(same_runtime_diff)
    assert scenario_fingerprint(base) != scenario_fingerprint(diff_driver)


def test_orphaned_packets_counted(profile):
    manager = make_manager()
    manager.ingest("ghost", 0.0, np.ones((2, 30), dtype=np.complex128))
    report = manager.tick()
    assert report.orphaned == 1
    assert report.ingested == 0
    counters = manager.metrics_snapshot()["counters"]
    assert counters["packets_orphaned"] == 1


def test_backpressure_drops_counted(profile):
    manager = make_manager(queue_depth=8)
    manager.open_session("car-0", profile)
    for k in range(20):
        manager.ingest("car-0", 0.01 * k, np.ones((2, 30), dtype=np.complex128))
    counters = manager.metrics_snapshot()["counters"]
    assert counters["packets_dropped"] == 12
    manager.tick()
    # Only the surviving ring contents reach the session.
    assert manager.session("car-0").packets == 8


def test_idle_then_eviction_policy(profile):
    clock = ManualClock()
    manager = make_manager(idle_timeout_s=10.0, evict_after_s=20.0, clock=clock)
    cabin = SyntheticCabin("car-0", seed=2, duration_s=2.0, rate_hz=100.0)
    manager.open_session("car-0", profile)
    stream_cabin(manager, cabin)
    assert manager.session("car-0").state == LIVE

    clock.advance(11.0)
    report = manager.tick()
    assert report.idled == ("car-0",)
    assert manager.session("car-0").state == IDLE

    clock.advance(21.0)
    report = manager.tick()
    assert report.evicted == ("car-0",)
    assert manager.session("car-0").state == EVICTED
    assert len(manager) == 0
    # Late packets for the evicted session are orphaned, not an error.
    manager.ingest("car-0", 99.0, np.ones((2, 30), dtype=np.complex128))
    assert manager.tick().orphaned == 1


def test_idle_session_wakes_on_packets(profile):
    clock = ManualClock()
    manager = make_manager(idle_timeout_s=10.0, evict_after_s=None, clock=clock)
    cabin = SyntheticCabin("car-0", seed=2, duration_s=2.0, rate_hz=100.0)
    manager.open_session("car-0", profile)
    stream_cabin(manager, cabin)

    clock.advance(11.0)
    manager.tick()
    assert manager.session("car-0").state == IDLE

    manager.ingest("car-0", float(cabin.times[-1]) + 0.01,
                   cabin.csi_at(len(cabin) - 1))
    manager.tick()
    assert manager.session("car-0").state == LIVE


def test_metrics_snapshot_includes_stage_stats(profile):
    manager = make_manager()
    cabin = SyntheticCabin("car-0", seed=4, duration_s=3.0, rate_hz=100.0)
    manager.open_session("car-0", profile)
    stream_cabin(manager, cabin)
    snapshot = manager.metrics_snapshot()
    assert snapshot["counters"]["estimates_served"] > 0
    assert snapshot["stages"], "fleet stage stats must fold into the snapshot"
    line = manager.render_metrics()
    assert "sessions_live=1" in line
    assert "estimate_latency_ms{p50=" in line


def test_unknown_session_lookup_raises(profile):
    manager = make_manager()
    with pytest.raises(KeyError):
        manager.session("nope")
    with pytest.raises(KeyError):
        manager.ingest_imu("nope", 0.0, 0.0)


def test_eviction_prunes_queue_shed_map(profile):
    # Fill the tiny ring so the session accrues per-session shed counts,
    # then evict it both ways and check the bookkeeping is pruned.
    manager = make_manager(queue_depth=4)
    manager.open_session("car-0", profile)
    for k in range(10):
        manager.ingest("car-0", 0.01 * k, np.ones((2, 30), dtype=np.complex128))
    assert "car-0" in manager.queue.dropped_by_session

    manager.close_session("car-0")
    assert "car-0" not in manager.queue.dropped_by_session

    # The idle->evict path prunes too.
    clock = ManualClock()
    manager = make_manager(queue_depth=4, idle_timeout_s=1.0, evict_after_s=1.0,
                           clock=clock)
    cabin = SyntheticCabin("car-1", seed=5, duration_s=1.0, rate_hz=100.0)
    manager.open_session("car-1", profile)
    for k in range(len(cabin)):
        manager.ingest(cabin.cabin_id, float(cabin.times[k]), cabin.csi_at(k))
    manager.tick()
    assert "car-1" in manager.queue.dropped_by_session
    clock.advance(2.0)
    manager.tick()  # -> idle
    clock.advance(2.0)
    report = manager.tick()  # -> evicted
    assert report.evicted == ("car-1",)
    assert "car-1" not in manager.queue.dropped_by_session
