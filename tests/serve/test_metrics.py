"""Metrics registry: counters/gauges/histograms and the rendered line."""

import numpy as np
import pytest

from repro.core.diagnostics import StageStats
from repro.serve.metrics import Histogram, MetricsRegistry, render_snapshot


def test_counter_monotone():
    registry = MetricsRegistry()
    counter = registry.counter("packets")
    counter.inc()
    counter.inc(4)
    assert counter.value == 5
    with pytest.raises(ValueError):
        counter.inc(-1)
    # Get-or-create returns the same instance.
    assert registry.counter("packets") is counter


def test_gauge_set_inc_dec():
    gauge = MetricsRegistry().gauge("live")
    gauge.set(10)
    gauge.inc()
    gauge.dec(3)
    assert gauge.value == 8


def test_histogram_percentiles():
    hist = Histogram("latency")
    for v in range(1, 101):
        hist.observe(float(v))
    assert hist.count == 100
    assert hist.percentile(50) == pytest.approx(50.5)
    assert hist.percentile(90) == pytest.approx(90.1)


def test_histogram_bounded_window():
    hist = Histogram("latency", capacity=8)
    for v in range(1000):
        hist.observe(float(v))
    assert hist.count == 1000
    # Percentiles reflect only the newest `capacity` observations.
    assert hist.percentile(50) >= 992
    assert np.isnan(Histogram("empty").percentile(50))


def test_histogram_summary_exposes_tail_percentiles():
    hist = Histogram("latency")
    for v in range(1, 1001):
        hist.observe(float(v))
    summary = hist.summary()
    # Every key an SLO gate can reference, and monotone tails.
    assert set(summary) == {"count", "p50", "p90", "p99", "p99_9", "max"}
    assert summary["count"] == 1000
    assert summary["p50"] <= summary["p90"] <= summary["p99"]
    assert summary["p99"] <= summary["p99_9"] <= summary["max"]
    assert summary["max"] == 1000.0
    assert summary["p99"] == pytest.approx(np.percentile(np.arange(1.0, 1001.0), 99))
    assert summary["p99_9"] == pytest.approx(
        np.percentile(np.arange(1.0, 1001.0), 99.9)
    )


def test_histogram_tails_after_window_wraparound():
    """Tail percentiles must describe the retained window only, even
    after the ring has wrapped many times over."""
    hist = Histogram("latency", capacity=64)
    # 10 full wraps of small values, then one window of large ones.
    for v in range(640):
        hist.observe(0.001 * v)
    for v in range(64):
        hist.observe(1000.0 + v)
    summary = hist.summary()
    assert summary["count"] == 704
    # Nothing from the overwritten epochs survives in any tail stat.
    assert summary["p50"] >= 1000.0
    assert summary["p99"] >= 1000.0
    assert summary["p99_9"] >= 1000.0
    assert summary["max"] == 1063.0
    # Mid-wrap: the window mixes the newest partial epoch with the tail
    # of the previous one — percentiles still cover exactly `capacity`.
    hist.observe(5000.0)
    assert hist.summary()["max"] == 5000.0
    assert hist.percentile(0) >= 1000.0


def test_histogram_tails_empty_and_tiny_windows():
    empty = Histogram("empty")
    summary = empty.summary()
    for key in ("p50", "p99", "p99_9", "max"):
        assert np.isnan(summary[key])
    one = Histogram("one")
    one.observe(7.5)
    summary = one.summary()
    assert summary["p99_9"] == 7.5
    assert summary["max"] == 7.5


def test_name_collision_across_types_rejected():
    registry = MetricsRegistry()
    registry.counter("x")
    with pytest.raises(ValueError):
        registry.gauge("x")


def test_as_dict_and_render():
    registry = MetricsRegistry()
    registry.gauge("sessions_live").set(3)
    registry.counter("packets_ingested").inc(120)
    registry.counter("packets_dropped")
    hist = registry.histogram("estimate_latency_ms")
    for v in (1.0, 2.0, 3.0):
        hist.observe(v)
    registry.fold_stage_stats(
        [StageStats("match", evaluated=10, fired=8, terminal=0,
                    p50_ms=5.0, p90_ms=9.0),
         StageStats("emit", evaluated=8, fired=8, terminal=8,
                    p50_ms=0.1, p90_ms=0.2)]
    )

    snapshot = registry.as_dict()
    assert snapshot["gauges"]["sessions_live"] == 3
    assert snapshot["counters"]["packets_ingested"] == 120
    assert snapshot["histograms"]["estimate_latency_ms"]["p50"] == pytest.approx(2.0)
    assert snapshot["stages"][0]["stage"] == "match"

    # The snapshot's histogram digest carries the tail keys too.
    latency = snapshot["histograms"]["estimate_latency_ms"]
    assert latency["p99"] == pytest.approx(2.98)
    assert latency["max"] == 3.0

    line = registry.render()
    assert "sessions_live=3" in line
    assert "packets_ingested=120" in line
    assert "packets_dropped=0" in line
    assert "estimate_latency_ms{p50=2.00,p90=" in line
    assert ",p99=2.98," in line
    assert "stage_terminals{emit=8}" in line
    assert "\n" not in line
    # The module-level renderer is the same formatter the registry uses,
    # so a merged (fleet) snapshot renders identically.
    assert render_snapshot(snapshot) == line
