"""Open-loop load generation and SLO gating."""

from __future__ import annotations

import math

import pytest

from repro.serve.openloop import SloSpec, SloViolation, run_open_loop


class TestSloSpec:
    def test_parse(self) -> None:
        spec = SloSpec.parse("p99=50, p99.9=200,max=500")
        assert spec.thresholds == (
            ("p99", 50.0),
            ("p99_9", 200.0),
            ("max", 500.0),
        )

    def test_parse_rejects_garbage(self) -> None:
        with pytest.raises(ValueError):
            SloSpec.parse("p99")
        with pytest.raises(ValueError):
            SloSpec.parse("p42=10")
        with pytest.raises(ValueError):
            SloSpec.parse("")
        with pytest.raises(ValueError):
            SloSpec.parse(" , ,")

    def test_evaluate_flags_only_misses(self) -> None:
        spec = SloSpec.parse("p50=10,p99=100")
        summary = {"p50": 12.0, "p99": 80.0}
        violations = spec.evaluate(summary)
        assert violations == (SloViolation("p50", 10.0, 12.0),)
        assert "12.00ms exceeds 10.00ms" in str(violations[0])
        assert spec.evaluate({"p50": 9.0, "p99": 100.0}) == ()

    def test_nan_summary_counts_as_miss(self) -> None:
        # A run that measured nothing must not pass its SLO gate.
        spec = SloSpec.parse("p99=100")
        violations = spec.evaluate({"p99": math.nan})
        assert len(violations) == 1
        assert math.isnan(violations[0].actual_ms)


# Generous wall-clock bound: these assert plumbing, never performance
# (CI machines are noisy; the real SLO gate runs in the bench job with
# a limit chosen for that runner).
LENIENT = SloSpec.parse("p99=60000")


def test_open_loop_single_process() -> None:
    result = run_open_loop(
        num_sessions=3,
        duration_s=1.6,
        rate_hz=50.0,
        speedup=40.0,
        workers=0,
        slo=LENIENT,
    )
    assert result.sessions == 3
    assert result.workers == 0
    assert result.packets == 3 * len(range(int(1.6 * 50.0)))
    assert result.estimates > 0
    assert result.latency["count"] == result.estimates
    assert result.latency["p50"] > 0.0  # wall latency is never zero
    assert result.latency["p99"] >= result.latency["p50"]
    assert result.slo_checked and result.slo_met
    assert "open-loop 3 sessions" in result.summary()
    payload = result.as_dict()
    assert payload["slo_met"] is True
    assert payload["latency_ms"]["p99_9"] == result.latency["p99_9"]
    assert "estimates_served" in result.metrics_line


def test_open_loop_through_inline_fabric() -> None:
    result = run_open_loop(
        num_sessions=3,
        duration_s=1.6,
        rate_hz=50.0,
        speedup=40.0,
        workers=2,
        processes=False,
        slo=LENIENT,
    )
    assert result.workers == 2
    assert result.estimates > 0
    assert result.slo_met


def test_open_loop_reports_violations() -> None:
    result = run_open_loop(
        num_sessions=2,
        duration_s=1.6,
        rate_hz=50.0,
        speedup=40.0,
        slo=SloSpec.parse("p50=0.000001"),
    )
    assert not result.slo_met
    assert result.violations[0].percentile == "p50"
    assert "exceeds" in result.summary()


def test_open_loop_validation() -> None:
    with pytest.raises(ValueError):
        run_open_loop(num_sessions=0)
    with pytest.raises(ValueError):
        run_open_loop(speedup=0.0)
