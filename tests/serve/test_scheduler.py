"""Round-robin scheduler: budget, deferral carry-over, deadlines.

Real trackers are too slow for tight scheduling assertions, so these
tests use a stub session object (duck-typed to the scheduler's needs)
and a fake wall clock that advances a fixed amount per reading.
"""

import pytest

from repro.serve.scheduler import RoundRobinScheduler


class FakeClock:
    def __init__(self, step_s: float) -> None:
        self.step_s = step_s
        self.now = 0.0

    def __call__(self) -> float:
        self.now += self.step_s
        return self.now


class StubSession:
    """Pending session whose poll costs nothing but a clock reading."""

    def __init__(self, session_id, newest=1.0, due=None, stride_s=0.1):
        self.session_id = session_id
        self.stride_s = stride_s
        self._newest = newest
        self._due = due
        self.polls = 0

    def pending(self):
        return True

    @property
    def newest_time(self):
        return self._newest

    @property
    def due_time(self):
        return self._due

    def poll_estimate(self):
        self.polls += 1
        return None


def test_all_served_when_budget_allows():
    scheduler = RoundRobinScheduler(budget_s=100.0, wall_clock=FakeClock(0.001))
    sessions = [StubSession(f"s{k}") for k in range(5)]
    report = scheduler.tick(sessions)
    assert [s.session_id for s in report.served] == [f"s{k}" for k in range(5)]
    assert report.deferred == ()


def test_budget_defers_tail_and_resumes_there():
    # Each clock reading advances 10 ms; the budget admits ~2 sessions.
    scheduler = RoundRobinScheduler(budget_s=0.05, wall_clock=FakeClock(0.010))
    sessions = [StubSession(f"s{k}") for k in range(6)]
    first = scheduler.tick(sessions)
    assert len(first.served) >= 1
    assert first.deferred, "tail sessions must be deferred, not skipped"
    served_first = {s.session_id for s in first.served}
    assert set(first.deferred).isdisjoint(served_first)

    # Next tick starts at the first deferred session.
    second = scheduler.tick(sessions)
    assert second.served[0].session_id == first.deferred[0]


def test_every_session_served_across_ticks():
    scheduler = RoundRobinScheduler(budget_s=0.05, wall_clock=FakeClock(0.010))
    sessions = [StubSession(f"s{k}") for k in range(6)]
    for _ in range(10):
        scheduler.tick(sessions)
    polls = [s.polls for s in sessions]
    # Fairness: nobody starves, nobody hogs.
    assert min(polls) >= 1
    assert max(polls) - min(polls) <= 1


def test_at_least_one_served_under_tiny_budget():
    scheduler = RoundRobinScheduler(budget_s=1e-9, wall_clock=FakeClock(1.0))
    sessions = [StubSession("a"), StubSession("b")]
    report = scheduler.tick(sessions)
    assert len(report.served) == 1
    assert report.deferred == ("b",)


def test_deadline_accounting():
    scheduler = RoundRobinScheduler(budget_s=100.0, wall_clock=FakeClock(0.001))
    on_time = StubSession("on-time", newest=1.0, due=1.0, stride_s=0.1)
    late = StubSession("late", newest=1.05, due=1.0, stride_s=0.1)
    very_late = StubSession("very-late", newest=1.5, due=1.0, stride_s=0.1)
    report = scheduler.tick([on_time, late, very_late])
    by_id = {s.session_id: s for s in report.served}
    assert by_id["on-time"].lateness_s == 0.0
    assert by_id["late"].lateness_s == pytest.approx(0.05)
    assert by_id["very-late"].lateness_s == pytest.approx(0.5)
    # Only lateness beyond one stride counts as a miss.
    assert report.deadline_misses == 1


def test_empty_and_non_pending_sessions():
    scheduler = RoundRobinScheduler(budget_s=1.0, wall_clock=FakeClock(0.001))
    assert scheduler.tick([]).served == ()

    class NotPending(StubSession):
        def pending(self):
            return False

    report = scheduler.tick([NotPending("x")])
    assert report.served == () and report.deferred == ()


def test_budget_validation():
    with pytest.raises(ValueError):
        RoundRobinScheduler(budget_s=0.0)
