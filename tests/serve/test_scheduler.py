"""Round-robin scheduler: budget, deferral carry-over, deadlines.

Real trackers are too slow for tight scheduling assertions, so these
tests use a stub session object (duck-typed to the scheduler's needs)
and a fake wall clock that advances a fixed amount per reading.
"""

import pytest

from repro.serve.scheduler import RoundRobinScheduler


class FakeClock:
    def __init__(self, step_s: float) -> None:
        self.step_s = step_s
        self.now = 0.0

    def __call__(self) -> float:
        self.now += self.step_s
        return self.now


class StubSession:
    """Pending session whose poll costs nothing but a clock reading."""

    def __init__(self, session_id, newest=1.0, due=None, stride_s=0.1):
        self.session_id = session_id
        self.stride_s = stride_s
        self._newest = newest
        self._due = due
        self.polls = 0

    def pending(self):
        return True

    @property
    def newest_time(self):
        return self._newest

    @property
    def due_time(self):
        return self._due

    def poll_estimate(self):
        self.polls += 1
        return None


def test_all_served_when_budget_allows():
    scheduler = RoundRobinScheduler(budget_s=100.0, wall_clock=FakeClock(0.001))
    sessions = [StubSession(f"s{k}") for k in range(5)]
    report = scheduler.tick(sessions)
    assert [s.session_id for s in report.served] == [f"s{k}" for k in range(5)]
    assert report.deferred == ()


def test_budget_defers_tail_and_resumes_there():
    # Each clock reading advances 10 ms; the budget admits ~2 sessions.
    scheduler = RoundRobinScheduler(budget_s=0.05, wall_clock=FakeClock(0.010))
    sessions = [StubSession(f"s{k}") for k in range(6)]
    first = scheduler.tick(sessions)
    assert len(first.served) >= 1
    assert first.deferred, "tail sessions must be deferred, not skipped"
    served_first = {s.session_id for s in first.served}
    assert set(first.deferred).isdisjoint(served_first)

    # Next tick starts at the first deferred session.
    second = scheduler.tick(sessions)
    assert second.served[0].session_id == first.deferred[0]


def test_every_session_served_across_ticks():
    scheduler = RoundRobinScheduler(budget_s=0.05, wall_clock=FakeClock(0.010))
    sessions = [StubSession(f"s{k}") for k in range(6)]
    for _ in range(10):
        scheduler.tick(sessions)
    polls = [s.polls for s in sessions]
    # Fairness: nobody starves, nobody hogs.
    assert min(polls) >= 1
    assert max(polls) - min(polls) <= 1


def test_at_least_one_served_under_tiny_budget():
    scheduler = RoundRobinScheduler(budget_s=1e-9, wall_clock=FakeClock(1.0))
    sessions = [StubSession("a"), StubSession("b")]
    report = scheduler.tick(sessions)
    assert len(report.served) == 1
    assert report.deferred == ("b",)


def test_deadline_accounting():
    scheduler = RoundRobinScheduler(budget_s=100.0, wall_clock=FakeClock(0.001))
    on_time = StubSession("on-time", newest=1.0, due=1.0, stride_s=0.1)
    late = StubSession("late", newest=1.05, due=1.0, stride_s=0.1)
    very_late = StubSession("very-late", newest=1.5, due=1.0, stride_s=0.1)
    report = scheduler.tick([on_time, late, very_late])
    by_id = {s.session_id: s for s in report.served}
    assert by_id["on-time"].lateness_s == 0.0
    assert by_id["late"].lateness_s == pytest.approx(0.05)
    assert by_id["very-late"].lateness_s == pytest.approx(0.5)
    # Only lateness beyond one stride counts as a miss.
    assert report.deadline_misses == 1


def test_empty_and_non_pending_sessions():
    scheduler = RoundRobinScheduler(budget_s=1.0, wall_clock=FakeClock(0.001))
    assert scheduler.tick([]).served == ()

    class NotPending(StubSession):
        def pending(self):
            return False

    report = scheduler.tick([NotPending("x")])
    assert report.served == () and report.deferred == ()


def test_budget_validation():
    with pytest.raises(ValueError):
        RoundRobinScheduler(budget_s=0.0)


def test_stale_cursor_cleared_when_session_disappears():
    # Park the cursor on a deferred session...
    scheduler = RoundRobinScheduler(budget_s=1e-9, wall_clock=FakeClock(1.0))
    a, b = StubSession("a"), StubSession("b")
    first = scheduler.tick([a, b])
    assert first.deferred == ("b",)
    assert scheduler._cursor == "b"

    # ...then tick without it (evicted/quarantined/no longer pending),
    # with budget to serve everyone: rotation must restart cleanly AND
    # drop the stale cursor.
    scheduler.budget_s = 100.0
    scheduler.wall_clock = FakeClock(0.001)
    others = [StubSession("c"), StubSession("d")]
    second = scheduler.tick(others)
    assert [s.session_id for s in second.served] == ["c", "d"]
    assert scheduler._cursor is None, "stale cursor must not pin forever"

    # A later reappearance of 'b' gets no spurious priority (with the
    # stale cursor retained it would be rotated to the front).
    third = scheduler.tick([StubSession("c"), StubSession("d"), StubSession("b")])
    assert third.served[0].session_id == "c"


def test_unpollable_session_skipped_without_nan_record():
    scheduler = RoundRobinScheduler(budget_s=100.0, wall_clock=FakeClock(0.001))

    class Vanished(StubSession):
        @property
        def newest_time(self):
            return None

    gone = Vanished("gone")
    alive = StubSession("alive")
    report = scheduler.tick([gone, alive])
    # No serving record for the unpollable session — in particular no
    # NaN-stamped one leaking into metrics folds.
    assert [s.session_id for s in report.served] == ["alive"]
    assert all(s.polled_t == s.polled_t for s in report.served)  # no NaN
    assert gone.polls == 0


def test_poll_exception_contained_in_serving_record():
    scheduler = RoundRobinScheduler(budget_s=100.0, wall_clock=FakeClock(0.001))

    class Exploding(StubSession):
        def poll_estimate(self):
            raise RuntimeError("tracker wedged")

    bad = Exploding("bad")
    good = StubSession("good")
    report = scheduler.tick([bad, good])  # must not raise
    by_id = {s.session_id: s for s in report.served}
    assert by_id["bad"].error == "RuntimeError: tracker wedged"
    assert by_id["bad"].estimate is None
    assert by_id["good"].error is None
    assert report.failures == (by_id["bad"],)
    assert good.polls == 1, "the bad session must not poison the tick"


class DeadlineStub(StubSession):
    """A stub whose due time advances on poll, like a real session."""

    def poll_estimate(self):
        self.polls += 1
        self._due = self._newest + self.stride_s
        return None


def test_deferred_session_misses_counted_exactly_once():
    # The clock burns the whole budget on the first poll: each tick
    # serves exactly one session and defers the rest.
    scheduler = RoundRobinScheduler(budget_s=1e-9, wall_clock=FakeClock(1.0))
    a = DeadlineStub("a", newest=1.5, due=1.0, stride_s=0.1)
    b = DeadlineStub("b", newest=1.5, due=1.0, stride_s=0.1)

    first = scheduler.tick([a, b])
    assert [s.session_id for s in first.served] == ["a"]
    assert first.deferred == ("b",)
    assert first.deadline_misses == 1  # only the served session's miss

    # The deferred session is served FIRST next tick, and its miss is
    # counted now — once, not re-counted for 'a' whose deadline moved.
    second = scheduler.tick([a, b])
    assert second.served[0].session_id == "b"
    assert second.deadline_misses == 1
    assert first.deadline_misses + second.deadline_misses == 2
    assert a.polls == b.polls == 1 or (a.polls, b.polls) == (2, 1)
