"""TrackedSession lifecycle and snapshot behaviour."""

import numpy as np
import pytest

from repro.core.config import ViHOTConfig
from repro.serve.loadgen import SyntheticCabin, synthetic_profile
from repro.serve.session import (
    CREATED,
    EVICTED,
    LIVE,
    PROFILED,
    SessionStateError,
    TrackedSession,
)

FAST = ViHOTConfig(profile_stride=8, num_length_candidates=3)


@pytest.fixture(scope="module")
def profile():
    return synthetic_profile()


@pytest.fixture()
def cabin():
    return SyntheticCabin("car", seed=3, duration_s=3.0, rate_hz=100.0)


def make_session(profile, **kwargs):
    session = TrackedSession("car", FAST, buffer_s=6.0, **kwargs)
    session.attach_profile(profile, fingerprint="fp")
    return session


def test_lifecycle_created_to_live(profile, cabin):
    session = TrackedSession("car", FAST, buffer_s=6.0)
    assert session.state == CREATED
    with pytest.raises(SessionStateError):
        session.push_csi(0.0, cabin.csi_at(0))
    session.attach_profile(profile, fingerprint="fp")
    assert session.state == PROFILED
    assert session.fingerprint == "fp"
    session.push_csi(float(cabin.times[0]), cabin.csi_at(0))
    assert session.state == LIVE
    assert session.packets == 1


def test_double_profile_rejected(profile):
    session = make_session(profile)
    with pytest.raises(SessionStateError):
        session.attach_profile(profile)


def test_idle_wakes_on_ingest(profile, cabin):
    session = make_session(profile)
    session.push_csi(float(cabin.times[0]), cabin.csi_at(0))
    session.mark_idle()
    assert session.state == "idle"
    session.push_csi(float(cabin.times[1]), cabin.csi_at(1))
    assert session.state == LIVE


def test_evicted_is_terminal(profile, cabin):
    session = make_session(profile)
    session.push_csi(float(cabin.times[0]), cabin.csi_at(0))
    session.evict()
    assert session.state == EVICTED
    assert session.tracker is None  # ring buffers reclaimed
    with pytest.raises(SessionStateError):
        session.push_csi(float(cabin.times[1]), cabin.csi_at(1))
    session.evict()  # idempotent
    assert session.state == EVICTED


def test_pending_respects_warmup_and_stride(profile, cabin):
    session = make_session(profile, stride_s=0.25)
    assert not session.pending()  # no data at all
    for k in range(len(cabin)):
        session.push_csi(float(cabin.times[k]), cabin.csi_at(k))
    assert session.pending()  # warmed up, never estimated
    estimate = session.poll_estimate()
    assert estimate is not None
    assert session.latest is estimate
    assert list(session.history) == [estimate]
    # Nothing new arrived: the stride gate holds it back.
    assert not session.pending()


def test_poll_matches_standalone_tracker(profile, cabin):
    from repro.core.online import OnlineTracker
    from repro.serve.loadgen import estimates_identical

    session = make_session(profile, stride_s=0.25)
    tracker = OnlineTracker(profile, FAST, buffer_s=6.0)
    for k in range(len(cabin)):
        t = float(cabin.times[k])
        session.push_csi(t, cabin.csi_at(k))
        tracker.push_csi(t, cabin.csi_at(k))
    served = session.poll_estimate()
    standalone = tracker.estimate(float(cabin.times[-1]))
    assert estimates_identical(served, standalone)


def test_history_is_bounded(profile, cabin):
    session = make_session(profile, stride_s=0.01, max_history=4)
    warm = 0
    for k in range(len(cabin)):
        session.push_csi(float(cabin.times[k]), cabin.csi_at(k))
        if session.pending() and session.poll_estimate() is not None:
            warm += 1
    assert warm > 4
    assert len(session.history) == 4
    assert session.estimates_produced == warm


def test_stage_stats_from_history(profile, cabin):
    session = make_session(profile, stride_s=0.25)
    for k in range(len(cabin)):
        session.push_csi(float(cabin.times[k]), cabin.csi_at(k))
        if session.pending():
            session.poll_estimate()
    stats = session.stage_stats()
    assert stats, "served estimates must carry traces"
    assert {s.stage for s in stats} >= {"position"}
    assert sum(s.terminal for s in stats) == session.estimates_produced


def test_invalid_stride_rejected():
    with pytest.raises(ValueError):
        TrackedSession("car", FAST, stride_s=0.0)


def test_newest_time_tracks_pushes(profile, cabin):
    session = make_session(profile)
    assert session.newest_time is None
    session.push_csi(float(cabin.times[0]), cabin.csi_at(0))
    assert session.newest_time == pytest.approx(float(cabin.times[0]))
    assert session.due_time is None  # never estimated yet
    assert np.isfinite(session.newest_time)
