"""Consistent-hash router: determinism, balance, minimal rehash."""

from __future__ import annotations

import pytest

from repro.serve.shard import ShardRouter

FLEET = [f"cabin-{k:04d}" for k in range(400)]


def test_routing_is_deterministic_across_instances() -> None:
    # Two independently built routers must agree on every placement —
    # this is what lets a respawned parent re-derive where sessions
    # live (and why the ring hashes with sha256, not salted hash()).
    a = ShardRouter(4)
    b = ShardRouter(4)
    assert [a.route(sid) for sid in FLEET] == [b.route(sid) for sid in FLEET]


def test_routes_stay_on_live_shards() -> None:
    router = ShardRouter(5)
    assert router.shards == (0, 1, 2, 3, 4)
    for sid in FLEET:
        assert router.route(sid) in router


def test_balance_within_bounds() -> None:
    # 64 virtual replicas keep the split uneven but bounded: every
    # shard gets traffic, the hottest stays within ~2.5x of the mean.
    router = ShardRouter(4)
    assignments = router.assignments(FLEET)
    counts = {shard: len(ids) for shard, ids in assignments.items()}
    assert set(counts) == {0, 1, 2, 3}
    assert all(count > 0 for count in counts.values())
    mean = len(FLEET) / len(router)
    assert max(counts.values()) < 2.5 * mean


def test_assignments_preserve_input_order_and_empty_shards() -> None:
    router = ShardRouter(8)
    few = FLEET[:3]
    assignments = router.assignments(few)
    assert set(assignments) == set(router.shards)  # empty shards listed
    flattened = [sid for shard in router.shards for sid in assignments[shard]]
    assert sorted(flattened) == sorted(few)
    for ids in assignments.values():
        assert ids == [sid for sid in few if sid in ids]  # input order


def test_remove_shard_rehashes_only_the_dead_shards_sessions() -> None:
    # The failover property: killing shard D moves exactly D's sessions;
    # every other session keeps its placement bit for bit.
    router = ShardRouter(4)
    before = {sid: router.route(sid) for sid in FLEET}
    dead = 2
    router.remove_shard(dead)
    after = {sid: router.route(sid) for sid in FLEET}
    for sid in FLEET:
        if before[sid] == dead:
            assert after[sid] != dead
            assert after[sid] in router
        else:
            assert after[sid] == before[sid]


def test_add_shard_restores_prior_placements() -> None:
    # Remove + re-add is placement-idempotent: the replica points are
    # pure functions of (shard, replica), so the ring rebuilds exactly.
    router = ShardRouter(4)
    before = {sid: router.route(sid) for sid in FLEET}
    router.remove_shard(1)
    router.add_shard(1)
    assert {sid: router.route(sid) for sid in FLEET} == before


def test_validation() -> None:
    with pytest.raises(ValueError):
        ShardRouter(0)
    with pytest.raises(ValueError):
        ShardRouter(2, replicas=0)
    router = ShardRouter(2)
    with pytest.raises(ValueError):
        router.add_shard(1)  # already present
    with pytest.raises(ValueError):
        router.remove_shard(7)  # never existed
    router.remove_shard(0)
    with pytest.raises(ValueError):
        router.remove_shard(1)  # cannot empty the ring
    assert len(router) == 1
