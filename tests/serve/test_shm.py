"""Shared-memory CSI ring: ordering, backpressure, cross-process use."""

from __future__ import annotations

from multiprocessing import get_context

import numpy as np
import pytest

from repro.serve.shm import SharedCsiRing

SHAPE = (2, 3)


def _packet(k: int) -> np.ndarray:
    return np.full(SHAPE, k + 1j * k, dtype=np.complex128)


def test_push_drain_roundtrip_preserves_order_and_values() -> None:
    ring = SharedCsiRing(8, SHAPE)
    try:
        for k in range(5):
            assert ring.push(f"cabin-{k}", 0.1 * k, _packet(k))
        assert len(ring) == 5
        assert ring.fill_fraction == pytest.approx(5 / 8)
        records = ring.drain()
        assert [r.session_id for r in records] == [f"cabin-{k}" for k in range(5)]
        assert [r.time for r in records] == pytest.approx([0.1 * k for k in range(5)])
        for k, record in enumerate(records):
            np.testing.assert_array_equal(record.csi, _packet(k))
            assert record.csi.dtype == np.complex128
        assert len(ring) == 0
    finally:
        ring.close()


def test_drained_records_survive_slot_reuse() -> None:
    # drain() must copy the CSI out: the slot is rewritten as soon as
    # the head advances, and a view would silently mutate.
    ring = SharedCsiRing(2, SHAPE)
    try:
        ring.push("a", 0.0, _packet(1))
        records = ring.drain()
        for k in range(10, 14):
            ring.push("b", 1.0, _packet(k))
        np.testing.assert_array_equal(records[0].csi, _packet(1))
    finally:
        ring.close()


def test_drop_oldest_attribution() -> None:
    ring = SharedCsiRing(4, SHAPE)
    try:
        for k in range(4):
            assert ring.push("old", float(k), _packet(k))
        # Ring full: the next two pushes shed the two oldest packets,
        # attributed to the session that lost them — not the pusher.
        assert not ring.push("new", 4.0, _packet(4))
        assert not ring.push("new", 5.0, _packet(5))
        assert ring.dropped_total == 2
        assert ring.dropped_by_session == {"old": 2}
        assert ring.pushed_total == 6
        times = [r.time for r in ring.drain()]
        assert times == [2.0, 3.0, 4.0, 5.0]  # freshest always admitted
        ring.forget_session("old")
        assert ring.dropped_by_session == {}
    finally:
        ring.close()


def test_partial_drain_quota() -> None:
    ring = SharedCsiRing(8, SHAPE)
    try:
        for k in range(6):
            ring.push("s", float(k), _packet(k))
        first = ring.drain(max_records=4)
        assert [r.time for r in first] == [0.0, 1.0, 2.0, 3.0]
        assert len(ring) == 2
        rest = ring.drain(max_records=10)  # quota larger than backlog
        assert [r.time for r in rest] == [4.0, 5.0]
    finally:
        ring.close()


def test_wraparound_many_times() -> None:
    ring = SharedCsiRing(3, SHAPE)
    try:
        for k in range(17):
            ring.push("s", float(k), _packet(k))
            if k % 2:
                ring.drain(max_records=1)
        drained = ring.drain()
        assert [r.time for r in drained] == sorted(r.time for r in drained)
    finally:
        ring.close()


def test_validation() -> None:
    with pytest.raises(ValueError):
        SharedCsiRing(0, SHAPE)
    ring = SharedCsiRing(2, SHAPE)
    try:
        with pytest.raises(ValueError):
            ring.push("s", 0.0, np.zeros((3, 3), dtype=np.complex128))
        with pytest.raises(ValueError):
            ring.push("x" * 100, 0.0, _packet(0))  # sid over the 64-byte slot
    finally:
        ring.close()


def _child_pushes(ring: SharedCsiRing, n: int) -> None:
    for k in range(n):
        ring.push(f"child-{k % 2}", float(k), _packet(k))


def test_cross_process_push_visible_to_parent() -> None:
    # The fabric's actual topology is parent-writes / worker-reads; the
    # symmetric direction proves the mapping is truly shared either way.
    ring = SharedCsiRing(32, SHAPE)
    try:
        ctx = get_context("fork")
        child = ctx.Process(target=_child_pushes, args=(ring, 10))
        child.start()
        child.join(timeout=30.0)
        assert child.exitcode == 0
        assert ring.pushed_total == 10
        records = ring.drain()
        assert len(records) == 10
        np.testing.assert_array_equal(records[7].csi, _packet(7))
    finally:
        ring.close()


def test_attach_by_name_shares_storage() -> None:
    owner = SharedCsiRing(4, SHAPE)
    reader = None
    try:
        owner.push("s", 1.5, _packet(3))
        reader = SharedCsiRing(4, SHAPE, name=owner.name, lock=owner._lock)
        assert not reader.owner
        records = reader.drain()
        assert records[0].session_id == "s"
        assert records[0].time == 1.5
        assert len(owner) == 0  # same ring, not a copy
    finally:
        if reader is not None:
            reader.close(unlink=False)
        owner.close()
