"""Constants sanity and public-API surface tests."""

import numpy as np
import pytest

import repro
from repro import constants


def test_wavelength_at_2_4ghz():
    assert constants.wavelength(2.437e9) == pytest.approx(0.123, abs=0.001)


def test_wavelength_validation():
    with pytest.raises(ValueError):
        constants.wavelength(0.0)


def test_subcarrier_frequencies_span_20mhz():
    freqs = constants.subcarrier_frequencies()
    assert freqs.max() - freqs.min() == pytest.approx(
        56 * constants.SUBCARRIER_SPACING_HZ
    )
    assert len(freqs) == 30


def test_intel5300_grid_properties():
    idx = constants.INTEL5300_SUBCARRIER_INDICES
    assert len(idx) == 30
    assert idx.min() == -28 and idx.max() == 28
    assert len(np.unique(idx)) == 30


def test_paper_rates_recorded():
    assert constants.CLEAN_CSI_RATE_HZ == 500.0
    assert constants.INTERFERED_CSI_RATE_HZ == 400.0
    assert constants.CLEAN_MAX_GAP_S == pytest.approx(0.034)
    assert constants.INTERFERED_MAX_GAP_S == pytest.approx(0.049)
    assert constants.CLEAN_CSI_RATE_HZ / constants.CAMERA_FRAME_RATE_HZ > 10


def test_public_api_exports():
    for name in repro.__all__:
        assert hasattr(repro, name), f"repro.{name} missing"


def test_version_string():
    major = int(repro.__version__.split(".")[0])
    assert major >= 1


def test_quickstart_snippet_runs():
    """The README quickstart must stay runnable."""
    from repro import ViHOTConfig, build_scenario, run_profiling, run_tracking_session

    scenario = build_scenario(
        seed=0, num_positions=3, profile_seconds=4.0, runtime_duration_s=5.0
    )
    profile = run_profiling(scenario)
    session = run_tracking_session(
        scenario, profile, ViHOTConfig(), estimate_stride_s=0.25
    )
    assert session.summary().count > 5
