"""Documentation consistency: the docs must track the code.

These tests keep DESIGN.md / EXPERIMENTS.md / README honest: every bench
target the docs promise must exist on disk, every paper figure must have
a bench, and the README's layout description must match the package.
"""

import re
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent


def test_design_md_bench_targets_exist():
    text = (REPO / "DESIGN.md").read_text()
    for target in re.findall(r"benchmarks/(bench_\w+\.py)", text):
        assert (REPO / "benchmarks" / target).exists(), f"missing {target}"


def test_experiments_md_covers_every_figure():
    text = (REPO / "EXPERIMENTS.md").read_text()
    for figure in (
        "Fig. 2", "Fig. 3", "Fig. 8", "Fig. 10", "Fig. 13a", "Fig. 13b",
        "Fig. 13c", "Fig. 13d", "Fig. 14", "Fig. 15", "Fig. 17b",
        "Fig. 17c", "Fig. 17d",
    ):
        assert figure in text, f"EXPERIMENTS.md missing {figure}"


def test_every_paper_figure_has_a_bench():
    benches = {p.name for p in (REPO / "benchmarks").glob("bench_*.py")}
    for needed in (
        "bench_fig02_head_plane.py",
        "bench_fig03_phase_curves.py",
        "bench_fig08_steering_phase.py",
        "bench_fig10_prediction.py",
        "bench_fig11_layout_curves.py",
        "bench_fig12_antenna_layouts.py",
        "bench_fig13a_profile_interval.py",
        "bench_fig13b_window_size.py",
        "bench_fig13c_turn_speed.py",
        "bench_fig13d_drivers.py",
        "bench_fig14_speed_curves.py",
        "bench_fig15_micromotions.py",
        "bench_fig16_vibration_phase.py",
        "bench_fig17a_vibration.py",
        "bench_fig17b_steering_id.py",
        "bench_fig17c_passenger.py",
        "bench_fig17d_interference.py",
        "bench_sampling_rate.py",
    ):
        assert needed in benches, f"missing {needed}"


def test_readme_package_map_matches_source():
    text = (REPO / "README.md").read_text()
    src = REPO / "src" / "repro"
    for package in (
        "geometry", "dsp", "rf", "cabin", "sensors", "net", "core",
        "baselines", "experiments",
    ):
        assert package + "/" in text, f"README missing {package}/"
        assert (src / package / "__init__.py").exists()


def test_examples_promised_by_readme_exist():
    text = (REPO / "README.md").read_text()
    for example in re.findall(r"examples/(\w+\.py)", text):
        assert (REPO / "examples" / example).exists(), f"missing {example}"


def test_design_md_confirms_paper_identity():
    text = (REPO / "DESIGN.md").read_text()
    assert "Wireless CSI-Based Head Tracking in the Driver Seat" in text
    assert "CoNEXT 2018" in text
